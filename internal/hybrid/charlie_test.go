package hybrid

import (
	"math"
	"math/rand"
	"testing"

	"hybriddelay/internal/la"
	"hybriddelay/internal/waveform"
)

// TestCharlieFallExact: equations (8) and (9) are exact — they must
// agree with the trajectory solver to solver precision.
func TestCharlieFallExact(t *testing.T) {
	p := TableI()
	d0, err := p.FallingDelay(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CharlieFallZero(); math.Abs(got-d0) > 1e-17 {
		t.Errorf("eq (8) = %g, solver %g", got, d0)
	}
	dm, err := p.FallingDelay(-SISFar)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CharlieFallMinusInf(); math.Abs(got-dm) > 1e-17 {
		t.Errorf("eq (9) = %g, solver %g", got, dm)
	}
}

// TestCharlieFallExactRandomParams: (8) and (9) hold for arbitrary
// parameter sets, not just Table I.
func TestCharlieFallExactRandomParams(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		p := Params{
			R1:     (10 + 90*rng.Float64()) * 1e3,
			R2:     (10 + 90*rng.Float64()) * 1e3,
			R3:     (10 + 90*rng.Float64()) * 1e3,
			R4:     (10 + 90*rng.Float64()) * 1e3,
			CN:     (10 + 90*rng.Float64()) * 1e-18,
			CO:     (200 + 800*rng.Float64()) * 1e-18,
			Supply: waveform.DefaultSupply(),
			DMin:   rng.Float64() * 20e-12,
		}
		d0, err := p.FallingDelay(0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := p.CharlieFallZero(); math.Abs(got-d0) > 1e-16+1e-9*d0 {
			t.Fatalf("trial %d: eq (8) %g vs solver %g", trial, got, d0)
		}
		dm, err := p.FallingDelay(-SISFar)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := p.CharlieFallMinusInf(); math.Abs(got-dm) > 1e-16+1e-9*dm {
			t.Fatalf("trial %d: eq (9) %g vs solver %g", trial, got, dm)
		}
	}
}

// TestCharlieFallPlusInf: the eq (10) approximation with the slow-mode
// expansion point agrees with the exact crossing to well under 0.1 ps.
func TestCharlieFallPlusInf(t *testing.T) {
	p := TableI()
	exact, err := p.FallingDelay(SISFar)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := p.CharlieFallPlusInf()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(approx-exact) > 0.1e-12 {
		t.Errorf("eq (10) = %.4f ps, exact %.4f ps", waveform.ToPs(approx), waveform.ToPs(exact))
	}
}

// TestCharlieFallPlusInfPaperW documents the transcription issue in the
// preprint: evaluated literally at the printed w = 1e-10 s the Taylor
// expansion lands far from the exact value (the trajectory has settled
// long before 100 ps for Table I constants), whereas the slow-mode
// expansion point recovers it. This pins our DESIGN.md claim.
func TestCharlieFallPlusInfPaperW(t *testing.T) {
	p := TableI()
	exact, err := p.FallingDelay(SISFar)
	if err != nil {
		t.Fatal(err)
	}
	literal, err := p.CharlieFallPlusInfAtW(PaperW10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(literal-exact) < 5e-12 {
		t.Errorf("literal w=100ps expansion unexpectedly accurate (%g vs %g) — "+
			"if this starts passing, revisit the DESIGN.md note", literal, exact)
	}
	// A nearby expansion point works fine.
	good, err := p.CharlieFallPlusInfAtW(20e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(good-exact) > 1e-12 {
		t.Errorf("w=20ps expansion off by %g", good-exact)
	}
}

// TestCharlieRiseMatchesSolver: equations (11)/(12) (re-derived Taylor
// form) match the exact rising delays across separations and initial
// V_N values.
func TestCharlieRiseMatchesSolver(t *testing.T) {
	p := TableI()
	for _, x := range []float64{0, p.Supply.VDD / 2, p.Supply.VDD} {
		for _, dd := range []float64{-SISFar, -60e-12, -10e-12, 0, 10e-12, 60e-12, SISFar} {
			exact, err := p.RisingDelayFrom(dd, x)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := p.CharlieRise(dd, x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(approx-exact) > 0.15e-12 {
				t.Errorf("X=%g Delta=%g: eq (11/12) = %.4f ps, exact %.4f ps",
					x, dd, waveform.ToPs(approx), waveform.ToPs(exact))
			}
		}
	}
}

// TestVN01: the closed form of V_N^{(0,1)}(Delta) matches the mode
// (0,1) trajectory.
func TestVN01(t *testing.T) {
	p := TableI()
	for _, x := range []float64{0, 0.3, p.Supply.VDD} {
		sol, err := p.System(Mode01).Solve(la.Vec2{X: x})
		if err != nil {
			t.Fatal(err)
		}
		for _, dd := range []float64{0, 20e-12, 100e-12} {
			want := sol.At(dd).X
			got := p.VN01(dd, x)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("VN01(%g, %g) = %g, trajectory %g", dd, x, got, want)
			}
		}
	}
}

// TestCharlieCharacteristicConsistent: the assembled closed-form
// characteristic agrees with the solver-based one.
func TestCharlieCharacteristicConsistent(t *testing.T) {
	p := TableI()
	exact, err := p.Characteristic()
	if err != nil {
		t.Fatal(err)
	}
	formula, err := p.CharlieCharacteristic()
	if err != nil {
		t.Fatal(err)
	}
	e := exact.AsSlice()
	f := formula.AsSlice()
	for i := range e {
		if math.Abs(e[i]-f[i]) > 0.15e-12 {
			t.Errorf("characteristic %d: formula %.4f ps vs exact %.4f ps",
				i, waveform.ToPs(f[i]), waveform.ToPs(e[i]))
		}
	}
}

// TestCharlieR1Independence: the paper's observation that the falling
// characteristic delays do not depend on R1 at all (equations (8)-(10)).
func TestCharlieR1Independence(t *testing.T) {
	p := TableI()
	q := p
	q.R1 *= 7
	for _, pair := range [][2]float64{
		{p.CharlieFallZero(), q.CharlieFallZero()},
		{p.CharlieFallMinusInf(), q.CharlieFallMinusInf()},
	} {
		if pair[0] != pair[1] {
			t.Errorf("falling characteristic depends on R1: %g vs %g", pair[0], pair[1])
		}
	}
	a, err := p.CharlieFallPlusInf()
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.CharlieFallPlusInf()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("fall(+inf) depends on R1: %g vs %g", a, b)
	}
}

// TestCharlieFallMinusInfR3Independence: eq (9) depends only on CO*R4.
func TestCharlieFallMinusInfR3Independence(t *testing.T) {
	p := TableI()
	q := p
	q.R3 *= 3
	if p.CharlieFallMinusInf() != q.CharlieFallMinusInf() {
		t.Error("fall(-inf) depends on R3")
	}
}

// TestFallRatioTheorem: the paper's key §IV observation — with R3 ~= R4
// the ratio (fall(-inf) - dmin)/(fall(0) - dmin) is exactly
// (R3+R4)/R3 ~= 2, which is why a pure delay is needed to fit real
// gates.
func TestFallRatioTheorem(t *testing.T) {
	p := TableI()
	p.R3 = p.R4 // force exact equality
	num := p.CharlieFallMinusInf() - p.DMin
	den := p.CharlieFallZero() - p.DMin
	if math.Abs(num/den-2) > 1e-12 {
		t.Errorf("ratio = %.15g, want exactly 2 for R3 = R4", num/den)
	}
}
