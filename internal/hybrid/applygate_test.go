package hybrid

import (
	"math"
	"testing"

	"hybriddelay/internal/trace"
)

func mkTrace(initial bool, times ...float64) trace.Trace {
	var ev []trace.Event
	v := initial
	for _, tm := range times {
		v = !v
		ev = append(ev, trace.Event{Time: tm, Value: v})
	}
	return trace.New(initial, ev)
}

// TestApplyGateMatchesApplyNOR cross-validates the offline n-input
// applier against the event-driven 2-input channel on the NOR2
// SwitchGate: same parameters, same stimuli, the output transitions must
// agree to sub-femtosecond accuracy (the two paths share the model but
// use the 2x2 closed form vs the n-dimensional eigendecomposition).
func TestApplyGateMatchesApplyNOR(t *testing.T) {
	p := TableI()
	g := NOR2SwitchGate(p)
	until := 4e-9

	cases := []struct {
		name string
		a, b trace.Trace
	}{
		{"sis-a", mkTrace(false, 500e-12, 1500e-12), trace.Trace{}},
		{"sis-b", trace.Trace{}, mkTrace(false, 600e-12, 1800e-12)},
		{"mis-close", mkTrace(false, 500e-12, 1500e-12), mkTrace(false, 520e-12, 1540e-12)},
		{"staggered", mkTrace(false, 400e-12, 900e-12, 1600e-12, 2400e-12), mkTrace(false, 700e-12, 2000e-12)},
	}
	for _, c := range cases {
		ref, err := ApplyNOR(p, c.a, c.b, until, p.Supply.VDD)
		if err != nil {
			t.Fatalf("%s: ApplyNOR: %v", c.name, err)
		}
		got, err := ApplyGate(g, []trace.Trace{c.a, c.b}, until, p.Supply.VDD)
		if err != nil {
			t.Fatalf("%s: ApplyGate: %v", c.name, err)
		}
		if got.Initial != ref.Initial {
			t.Fatalf("%s: initial %v, want %v", c.name, got.Initial, ref.Initial)
		}
		if got.NumEvents() != ref.NumEvents() {
			t.Fatalf("%s: %d events, want %d (%+v vs %+v)",
				c.name, got.NumEvents(), ref.NumEvents(), got.Events, ref.Events)
		}
		for i := range got.Events {
			if got.Events[i].Value != ref.Events[i].Value {
				t.Errorf("%s: event %d direction mismatch", c.name, i)
			}
			if d := math.Abs(got.Events[i].Time - ref.Events[i].Time); d > 1e-16 {
				t.Errorf("%s: event %d at %g, want %g (|d| = %g)",
					c.name, i, got.Events[i].Time, ref.Events[i].Time, d)
			}
		}
	}
}

// TestApplyGateNOR3 runs the 3-input gate through the offline applier
// and checks basic behaviour: an output pulse appears only in the
// all-low input window and the trace is well-formed.
func TestApplyGateNOR3(t *testing.T) {
	p3 := NOR3FromNOR2(TableI())
	g := p3.Gate()
	// All three inputs pulse low-high-low, staggered; the output can
	// only rise once every input is low again.
	a := mkTrace(false, 400e-12, 900e-12)
	b := mkTrace(false, 500e-12, 1100e-12)
	c := mkTrace(false, 600e-12, 1300e-12)
	out, err := ApplyGate(g, []trace.Trace{a, b, c}, 4e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if !out.Initial {
		t.Error("NOR3 of all-low inputs must start high")
	}
	if !out.Final() {
		t.Error("NOR3 must settle high after all inputs return low")
	}
	// The falling edge trails the first rising input; the final rising
	// edge trails the last falling input.
	if out.NumEvents() < 2 {
		t.Fatalf("expected fall and rise, got %+v", out.Events)
	}
	if f := out.Events[0]; f.Value || f.Time <= 400e-12 {
		t.Errorf("first event %+v, want a fall after 400 ps", f)
	}
	if r := out.Events[len(out.Events)-1]; !r.Value || r.Time <= 1300e-12 {
		t.Errorf("last event %+v, want a rise after 1300 ps", r)
	}
}

// TestApplyGateValidation: arity and time-domain errors are rejected.
func TestApplyGateValidation(t *testing.T) {
	g := NOR2SwitchGate(TableI())
	if _, err := ApplyGate(g, []trace.Trace{{}}, 1e-9, 0); err == nil {
		t.Error("wrong input count accepted")
	}
	bad := trace.New(false, []trace.Event{{Time: -1e-12, Value: true}})
	if _, err := ApplyGate(g, []trace.Trace{bad, {}}, 1e-9, 0); err == nil {
		t.Error("negative event time accepted")
	}
}
