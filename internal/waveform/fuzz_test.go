package waveform

// Fuzz targets for the signal substrates every analog run flows
// through. The contracts under test: malformed inputs (non-monotonic
// timestamps, NaN/Inf samples, degenerate edge parameters) must be
// rejected with an error — never a panic — and accepted inputs must
// yield well-formed, bounded outputs.
//
// Short deterministic fuzz passes run in CI (-fuzztime=10s); the seed
// corpora under testdata/fuzz pin previously interesting shapes.

import (
	"encoding/binary"
	"math"
	"testing"
)

// f64s decodes the fuzzer's raw bytes into float64s (8 bytes each,
// little-endian), so the corpus explores the full bit space including
// NaN/Inf payloads and denormals.
func f64s(raw []byte, max int) []float64 {
	var out []float64
	for i := 0; i+8 <= len(raw) && len(out) < max; i += 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(raw[i:])))
	}
	return out
}

func FuzzNewWaveform(f *testing.F) {
	add := func(vals ...float64) {
		raw := make([]byte, 0, 8*len(vals))
		for _, v := range vals {
			raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(v))
		}
		f.Add(raw)
	}
	add(0, 1e-12, 2e-12, 0.8, 0.4, 0.0) // well-formed ramp
	add(0, 0, 1e-12, 0.8, 0.8, 0.8)     // duplicate timestamp
	add(1e-12, 0, 0.8, 0.4)             // non-monotonic
	add(0, 1e-12, math.NaN(), 0.4)      // NaN value
	add(0, math.Inf(1), 0.8, 0.4)       // Inf time
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := f64s(raw, 64)
		n := len(vals) / 2
		times, values := vals[:n], vals[n:2*n]
		w, err := NewWaveform(times, values)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		// Accepted waveforms are strictly monotonic and finite...
		for i, tm := range w.Times {
			if math.IsNaN(tm) || math.IsInf(tm, 0) {
				t.Fatalf("accepted non-finite time %g at %d", tm, i)
			}
			if i > 0 && tm <= w.Times[i-1] {
				t.Fatalf("accepted non-increasing time at %d", i)
			}
			if v := w.Values[i]; math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted non-finite value %g at %d", v, i)
			}
		}
		// ...and interpolation stays finite everywhere, including
		// outside the record (clamped).
		for _, tm := range []float64{w.Start() - 1, w.Start(), 0.5 * (w.Start() + w.End()), w.End(), w.End() + 1} {
			if v := w.At(tm); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("At(%g) = %g on a validated waveform", tm, v)
			}
		}
		for _, c := range w.Crossings(0.4) {
			if math.IsNaN(c.Time) || c.Time < w.Start() || c.Time > w.End() {
				t.Fatalf("crossing at %g outside record [%g, %g]", c.Time, w.Start(), w.End())
			}
		}
	})
}

func FuzzEdges(f *testing.F) {
	mk := func(times ...float64) []byte {
		raw := make([]byte, 0, 8*len(times))
		for _, v := range times {
			raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(v))
		}
		return raw
	}
	f.Add(mk(100e-12, 200e-12, 300e-12), uint8(0b101), 20e-12, 0.0, 0.8)
	f.Add(mk(100e-12, 100e-12), uint8(0b01), 20e-12, 0.0, 0.8) // simultaneous opposite edges
	f.Add(mk(300e-12, 100e-12), uint8(0b01), 20e-12, 0.0, 0.8) // unsorted input
	f.Add(mk(100e-12), uint8(1), math.NaN(), 0.0, 0.8)         // NaN rise time
	f.Add(mk(math.Inf(1)), uint8(1), 20e-12, 0.0, 0.8)         // Inf transition time
	f.Add(mk(), uint8(0), 20e-12, 0.8, 0.0)                    // empty: constant signal
	f.Fuzz(func(t *testing.T, raw []byte, dirs uint8, trise, vLow, vHigh float64) {
		times := f64s(raw, 8)
		ts := make([]Transition, len(times))
		for i, tm := range times {
			ts[i] = Transition{Time: tm, Rising: dirs&(1<<i) != 0}
		}
		sig, err := Edges(ts, trise, vLow, vHigh)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		lo, hi := math.Min(vLow, vHigh), math.Max(vLow, vHigh)
		probe := []float64{-1, 0, trise, 2 * trise}
		for _, tr := range ts {
			probe = append(probe, tr.Time-trise, tr.Time-trise/2, tr.Time, tr.Time+trise/2, tr.Time+trise)
		}
		const slack = 1e-9 // raised-cosine rounding at the ramp ends
		for _, tm := range probe {
			v := sig(tm)
			if math.IsNaN(v) || v < lo-slack || v > hi+slack {
				t.Fatalf("signal value %g at t=%g outside [%g, %g]", v, tm, lo, hi)
			}
		}
	})
}
