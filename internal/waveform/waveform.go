// Package waveform provides analog waveform containers and the input edge
// shapes used to drive both the analog NOR testbench and the delay-model
// evaluation pipeline. Voltages are volts, times are seconds.
package waveform

import (
	"fmt"
	"math"
	"sort"
)

// Supply describes the voltage environment. The paper uses the 15nm
// Nangate library at VDD = 0.8 V with the discretization threshold at
// VDD/2.
type Supply struct {
	VDD float64 // supply voltage [V]
	Vth float64 // logic threshold [V]
}

// DefaultSupply matches the paper's environment (VDD = 0.8 V, Vth = 0.4 V).
func DefaultSupply() Supply { return Supply{VDD: 0.8, Vth: 0.4} }

// Valid reports whether the supply is physically meaningful.
func (s Supply) Valid() bool {
	return s.VDD > 0 && s.Vth > 0 && s.Vth < s.VDD
}

// Common unit helpers.
const (
	Pico  = 1e-12 // seconds per picosecond
	Nano  = 1e-9  // seconds per nanosecond
	Femto = 1e-15 // farads per femtofarad
	Atto  = 1e-18 // farads per attofarad
	Kilo  = 1e3   // ohms per kiloohm
)

// Ps converts picoseconds to seconds.
func Ps(v float64) float64 { return v * Pico }

// ToPs converts seconds to picoseconds.
func ToPs(v float64) float64 { return v / Pico }

// Waveform is a sampled analog signal with strictly increasing times and
// linear interpolation between samples.
type Waveform struct {
	Times  []float64
	Values []float64
}

// NewWaveform validates and wraps the sample vectors. Samples must be
// finite: a NaN or ±Inf time or voltage (e.g. from a diverged transient)
// is rejected here so that interpolation, crossing detection and
// digitization never operate on — or silently produce — non-finite data.
func NewWaveform(times, values []float64) (*Waveform, error) {
	if len(times) != len(values) {
		return nil, fmt.Errorf("waveform: %d times vs %d values", len(times), len(values))
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("waveform: empty waveform")
	}
	for i := range times {
		if math.IsNaN(times[i]) || math.IsInf(times[i], 0) {
			return nil, fmt.Errorf("waveform: non-finite time %g at index %d", times[i], i)
		}
		if math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			return nil, fmt.Errorf("waveform: non-finite value %g at index %d", values[i], i)
		}
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("waveform: non-increasing time at index %d (%g after %g)", i, times[i], times[i-1])
		}
	}
	return &Waveform{Times: times, Values: values}, nil
}

// Len returns the sample count.
func (w *Waveform) Len() int { return len(w.Times) }

// Start returns the first sample time.
func (w *Waveform) Start() float64 { return w.Times[0] }

// End returns the last sample time.
func (w *Waveform) End() float64 { return w.Times[len(w.Times)-1] }

// At returns the linearly interpolated value at time t, clamping to the
// first/last sample outside the record.
func (w *Waveform) At(t float64) float64 {
	n := len(w.Times)
	if t <= w.Times[0] {
		return w.Values[0]
	}
	if t >= w.Times[n-1] {
		return w.Values[n-1]
	}
	// Binary search for the segment containing t.
	i := sort.SearchFloat64s(w.Times, t)
	if w.Times[i] == t {
		return w.Values[i]
	}
	t0, t1 := w.Times[i-1], w.Times[i]
	v0, v1 := w.Values[i-1], w.Values[i]
	f := (t - t0) / (t1 - t0)
	return v0 + f*(v1-v0)
}

// Crossing describes one threshold crossing of a waveform.
type Crossing struct {
	Time   float64
	Rising bool // true if the waveform crosses the level upward
}

// Crossings returns all times at which the waveform crosses level,
// resolved by linear interpolation within each sample interval. Exact
// touches without a sign change are ignored (they do not change the
// digital abstraction).
func (w *Waveform) Crossings(level float64) []Crossing {
	var out []Crossing
	for i := 1; i < len(w.Times); i++ {
		v0 := w.Values[i-1] - level
		v1 := w.Values[i] - level
		if v0 == 0 || v0*v1 >= 0 {
			continue
		}
		f := v0 / (v0 - v1)
		t := w.Times[i-1] + f*(w.Times[i]-w.Times[i-1])
		out = append(out, Crossing{Time: t, Rising: v1 > v0})
	}
	return out
}

// FirstCrossingAfter returns the earliest crossing of level after time t0
// with the requested direction; ok is false if none exists.
func (w *Waveform) FirstCrossingAfter(t0, level float64, rising bool) (float64, bool) {
	for _, c := range w.Crossings(level) {
		if c.Time > t0 && c.Rising == rising {
			return c.Time, true
		}
	}
	return 0, false
}

// Clip returns the waveform restricted to [t0, t1], adding interpolated
// boundary samples.
func (w *Waveform) Clip(t0, t1 float64) (*Waveform, error) {
	if t1 <= t0 {
		return nil, fmt.Errorf("waveform: invalid clip window [%g, %g]", t0, t1)
	}
	times := []float64{t0}
	values := []float64{w.At(t0)}
	for i, t := range w.Times {
		if t > t0 && t < t1 {
			times = append(times, t)
			values = append(values, w.Values[i])
		}
	}
	times = append(times, t1)
	values = append(values, w.At(t1))
	return NewWaveform(times, values)
}

// MaxAbsDiff returns the maximum absolute difference between two waveforms
// sampled on the union of their time grids within their overlap.
func MaxAbsDiff(a, b *Waveform) float64 {
	times := append(append([]float64(nil), a.Times...), b.Times...)
	sort.Float64s(times)
	m := 0.0
	for _, t := range times {
		if d := math.Abs(a.At(t) - b.At(t)); d > m {
			m = d
		}
	}
	return m
}
