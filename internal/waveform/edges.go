package waveform

import (
	"fmt"
	"math"
	"sort"
)

// Signal is a continuous-time voltage source v(t). Input stimuli for the
// analog simulator are Signals; the simulator samples them at its own
// (adaptive) time points.
type Signal func(t float64) float64

// Constant returns a time-invariant signal.
func Constant(v float64) Signal {
	return func(float64) float64 { return v }
}

// RaisedCosineEdge returns a smooth monotone transition from v0 to v1
// centred so that the 50% point (the V_th crossing for v0, v1 =
// GND, VDD) occurs exactly at t50, with total transition time trise.
// The raised-cosine shape has continuous derivative everywhere, which is
// kind to the Newton iteration of the analog solver and is a reasonable
// stand-in for the smooth driver-shaped edges Spectre produces.
func RaisedCosineEdge(t50, trise, v0, v1 float64) Signal {
	if trise <= 0 {
		panic(fmt.Sprintf("waveform: non-positive rise time %g", trise))
	}
	start := t50 - trise/2
	return func(t float64) float64 {
		x := (t - start) / trise
		switch {
		case x <= 0:
			return v0
		case x >= 1:
			return v1
		default:
			return v0 + (v1-v0)*0.5*(1-math.Cos(math.Pi*x))
		}
	}
}

// Transition is one digital event on a driven input: the signal crosses
// V_th at Time, rising if Rising.
type Transition struct {
	Time   float64
	Rising bool
}

// Edges builds a Signal from a sequence of threshold-crossing times. The
// signal idles at the level implied by the first transition (low before a
// rising edge, high before a falling one) and applies a raised-cosine edge
// of duration trise for every transition. Transitions must be sorted and
// separated; overlapping edges are truncated at the midpoint between
// consecutive events so that the signal remains single-valued.
func Edges(transitions []Transition, trise, vLow, vHigh float64) (Signal, error) {
	if trise <= 0 || math.IsNaN(trise) || math.IsInf(trise, 0) {
		return nil, fmt.Errorf("waveform: invalid rise time %g", trise)
	}
	if math.IsNaN(vLow) || math.IsInf(vLow, 0) || math.IsNaN(vHigh) || math.IsInf(vHigh, 0) {
		return nil, fmt.Errorf("waveform: non-finite levels %g/%g", vLow, vHigh)
	}
	for i, t := range transitions {
		if math.IsNaN(t.Time) || math.IsInf(t.Time, 0) {
			return nil, fmt.Errorf("waveform: non-finite transition time %g at index %d", t.Time, i)
		}
	}
	ts := append([]Transition(nil), transitions...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Time < ts[j].Time })
	for i := 1; i < len(ts); i++ {
		if ts[i].Rising == ts[i-1].Rising {
			return nil, fmt.Errorf("waveform: consecutive transitions %d and %d have the same direction", i-1, i)
		}
	}
	if len(ts) == 0 {
		return Constant(vLow), nil
	}
	// Precompute the per-edge geometry once: the solver samples the signal
	// on every Newton solve, so the returned closure is hot. settled[i+1]
	// is the level after transition i (settled[0] the idle level); an
	// inline binary search replaces sort.Search's indirect predicate
	// calls. The edge arithmetic itself is unchanged.
	times := make([]float64, len(ts))
	settled := make([]float64, len(ts)+1)
	if ts[0].Rising {
		settled[0] = vLow
	} else {
		settled[0] = vHigh
	}
	for i, tr := range ts {
		times[i] = tr.Time
		if tr.Rising {
			settled[i+1] = vHigh
		} else {
			settled[i+1] = vLow
		}
	}
	half := trise / 2
	return func(t float64) float64 {
		// Find the first transition with Time > t. Value is determined by
		// the most recent edge whose ramp covers t, or by the settled
		// level otherwise; candidate edges are idx-1 (may still be
		// ramping or settled) and idx (its ramp may have started already
		// since edges are centred).
		lo, hi := 0, len(times)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if times[mid] > t {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		idx := lo
		if idx < len(times) {
			if start := times[idx] - half; t >= start {
				from, to := settled[idx], settled[idx+1]
				x := (t - start) / trise
				return from + (to-from)*0.5*(1-math.Cos(math.Pi*x))
			}
		}
		if idx > 0 {
			if start := times[idx-1] - half; t <= times[idx-1]+half {
				from, to := settled[idx-1], settled[idx]
				x := (t - start) / trise
				return from + (to-from)*0.5*(1-math.Cos(math.Pi*x))
			}
		}
		return settled[idx]
	}, nil
}

// Sample evaluates s on a uniform grid over [t0, t1] with n intervals.
func Sample(s Signal, t0, t1 float64, n int) (*Waveform, error) {
	if n < 1 {
		return nil, fmt.Errorf("waveform: sample count must be positive")
	}
	times := make([]float64, n+1)
	values := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(n)
		times[i] = t
		values[i] = s(t)
	}
	return NewWaveform(times, values)
}
