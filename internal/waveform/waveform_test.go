package waveform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSupply(t *testing.T) {
	s := DefaultSupply()
	if s.VDD != 0.8 || s.Vth != 0.4 {
		t.Errorf("default supply = %+v, want VDD=0.8 Vth=0.4", s)
	}
	if !s.Valid() {
		t.Error("default supply invalid")
	}
	for _, bad := range []Supply{{}, {VDD: 1, Vth: 0}, {VDD: 1, Vth: 1}, {VDD: -1, Vth: -0.5}} {
		if bad.Valid() {
			t.Errorf("supply %+v should be invalid", bad)
		}
	}
}

func TestUnitHelpers(t *testing.T) {
	if Ps(100) != 100e-12 {
		t.Error("Ps conversion wrong")
	}
	if ToPs(1e-12) != 1 {
		t.Error("ToPs conversion wrong")
	}
}

func TestNewWaveformValidation(t *testing.T) {
	if _, err := NewWaveform([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := NewWaveform(nil, nil); err == nil {
		t.Error("expected empty-waveform error")
	}
	if _, err := NewWaveform([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("expected non-increasing-time error")
	}
}

func TestWaveformAt(t *testing.T) {
	w, err := NewWaveform([]float64{0, 1, 2}, []float64{0, 10, 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.25, 7.5}, {2, 0}, {3, 0},
	}
	for _, c := range cases {
		if got := w.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if w.Start() != 0 || w.End() != 2 || w.Len() != 3 {
		t.Error("bounds wrong")
	}
}

func TestCrossings(t *testing.T) {
	// Triangle crossing 5 upward at 0.5 and downward at 1.5.
	w, _ := NewWaveform([]float64{0, 1, 2}, []float64{0, 10, 0})
	cs := w.Crossings(5)
	if len(cs) != 2 {
		t.Fatalf("got %d crossings, want 2", len(cs))
	}
	if math.Abs(cs[0].Time-0.5) > 1e-12 || !cs[0].Rising {
		t.Errorf("first crossing %+v, want rising at 0.5", cs[0])
	}
	if math.Abs(cs[1].Time-1.5) > 1e-12 || cs[1].Rising {
		t.Errorf("second crossing %+v, want falling at 1.5", cs[1])
	}
	if tm, ok := w.FirstCrossingAfter(0.6, 5, false); !ok || math.Abs(tm-1.5) > 1e-12 {
		t.Errorf("FirstCrossingAfter = %g ok=%v", tm, ok)
	}
	if _, ok := w.FirstCrossingAfter(0, 20, true); ok {
		t.Error("found impossible crossing")
	}
}

func TestClip(t *testing.T) {
	w, _ := NewWaveform([]float64{0, 1, 2}, []float64{0, 10, 0})
	c, err := w.Clip(0.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Start() != 0.5 || c.End() != 1.5 {
		t.Errorf("clip bounds [%g, %g]", c.Start(), c.End())
	}
	if math.Abs(c.At(1)-10) > 1e-12 {
		t.Error("clip lost interior sample")
	}
	if _, err := w.Clip(1.5, 0.5); err == nil {
		t.Error("expected invalid-window error")
	}
}

func TestRaisedCosineEdge(t *testing.T) {
	e := RaisedCosineEdge(10, 4, 0, 1)
	if got := e(7); got != 0 {
		t.Errorf("before edge = %g, want 0", got)
	}
	if got := e(13); got != 1 {
		t.Errorf("after edge = %g, want 1", got)
	}
	if got := e(10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("midpoint = %g, want 0.5 (t50 calibration)", got)
	}
	// Monotone.
	prev := -1.0
	for x := 7.0; x <= 13; x += 0.01 {
		v := e(x)
		if v < prev-1e-12 {
			t.Fatalf("edge not monotone at %g", x)
		}
		prev = v
	}
}

func TestRaisedCosineEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive rise time")
		}
	}()
	RaisedCosineEdge(0, 0, 0, 1)
}

func TestEdgesSignal(t *testing.T) {
	sig, err := Edges([]Transition{
		{Time: 100, Rising: true},
		{Time: 200, Rising: false},
	}, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sig(50); got != 0 {
		t.Errorf("idle level = %g, want 0", got)
	}
	if got := sig(100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("first threshold point = %g, want 0.5", got)
	}
	if got := sig(150); got != 1 {
		t.Errorf("settled high = %g, want 1", got)
	}
	if got := sig(200); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("second threshold point = %g, want 0.5", got)
	}
	if got := sig(300); got != 0 {
		t.Errorf("settled low = %g, want 0", got)
	}
}

func TestEdgesValidation(t *testing.T) {
	if _, err := Edges(nil, 0, 0, 1); err == nil {
		t.Error("expected rise-time error")
	}
	if _, err := Edges([]Transition{
		{Time: 1, Rising: true}, {Time: 2, Rising: true},
	}, 0.1, 0, 1); err == nil {
		t.Error("expected same-direction error")
	}
	sig, err := Edges(nil, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sig(123) != 0 {
		t.Error("empty edge list should idle low")
	}
}

// TestEdgesCrossingsRoundTrip: sampling an Edges signal and extracting
// threshold crossings recovers the programmed transition times.
func TestEdgesCrossingsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		var ts []Transition
		tcur := 0.0
		rising := true
		for i := 0; i < n; i++ {
			tcur += 40 + rng.Float64()*100
			ts = append(ts, Transition{Time: tcur, Rising: rising})
			rising = !rising
		}
		sig, err := Edges(ts, 20, 0, 1)
		if err != nil {
			return false
		}
		w, err := Sample(sig, 0, tcur+100, 20000)
		if err != nil {
			return false
		}
		cs := w.Crossings(0.5)
		if len(cs) != len(ts) {
			return false
		}
		for i := range cs {
			if math.Abs(cs[i].Time-ts[i].Time) > 0.1 || cs[i].Rising != ts[i].Rising {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a, _ := NewWaveform([]float64{0, 1}, []float64{0, 1})
	b, _ := NewWaveform([]float64{0, 1}, []float64{0, 2})
	if got := MaxAbsDiff(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("MaxAbsDiff = %g, want 1", got)
	}
}

func TestSampleValidation(t *testing.T) {
	if _, err := Sample(Constant(1), 0, 1, 0); err == nil {
		t.Error("expected sample-count error")
	}
	w, err := Sample(Constant(2), 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 5 || w.At(0.5) != 2 {
		t.Error("constant sampling wrong")
	}
}
