package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive is one //hybrid:<name> <reason> comment. The recognized
// names are:
//
//	//hybrid:noalloc               (function doc) noalloc root
//	//hybrid:alloc-ok <reason>     (function doc or statement) exempt
//	//hybrid:nondet-ok <reason>    (range statement) detmap suppression
//	//hybrid:lockhold-ok <reason>  (statement) lockhold suppression
//
// Suppressing directives require a non-empty reason; a bare
// suppression is itself reported instead of honored.
type Directive struct {
	Name   string
	Reason string
	Pos    token.Pos
}

// dirKey addresses one source line.
type dirKey struct {
	file string
	line int
}

// parseDirective decodes one comment's text, empty name if it is not a
// hybrid directive.
func parseDirective(text string) (name, reason string) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "hybrid:")
	if !ok {
		return "", ""
	}
	name, reason, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(reason)
}

// indexDirectives scans every comment of every file for hybrid
// directives and indexes them by (file, line).
func (m *Module) indexDirectives() {
	m.dirs = map[dirKey][]Directive{}
	for _, pkg := range m.Pkgs { //hybrid:nondet-ok directives land in a position-keyed map; lookup order irrelevant
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					name, reason := parseDirective(c.Text)
					if name == "" {
						continue
					}
					p := m.Fset.Position(c.Pos())
					k := dirKey{p.Filename, p.Line}
					m.dirs[k] = append(m.dirs[k], Directive{Name: name, Reason: reason, Pos: c.Pos()})
				}
			}
		}
	}
}

// directiveAt returns the named directive attached to pos: on the same
// source line or on the line directly above it.
func (m *Module) directiveAt(pos token.Pos, name string) *Directive {
	p := m.Fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range m.dirs[dirKey{p.Filename, line}] {
			if d.Name == name {
				d := d
				return &d
			}
		}
	}
	return nil
}

// funcDirective returns the named directive from a function's doc
// comment.
func (m *Module) funcDirective(decl *ast.FuncDecl, name string) *Directive {
	if decl.Doc == nil {
		return nil
	}
	for _, c := range decl.Doc.List {
		if n, reason := parseDirective(c.Text); n == name {
			return &Directive{Name: n, Reason: reason, Pos: c.Pos()}
		}
	}
	return nil
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by position so output is stable.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
