// Package locktest is a hybridlint fixture for the lockhold analyzer:
// blocking operations under a held mutex next to the non-blocking
// shapes (close, select-with-default, nested locks) that stay allowed.
package locktest

import (
	"os"
	"sync"
	"time"
)

// box guards a counter and a notification channel with a mutex.
type box struct {
	mu     sync.Mutex
	notify chan struct{}
	n      int
}

// recvUnderLock blocks on a channel while holding mu: the seeded
// violation.
func (b *box) recvUnderLock(ch chan int) int {
	b.mu.Lock()
	v := <-ch // want "channel receive"
	b.mu.Unlock()
	return v
}

// recvAfterUnlock releases first: clean.
func (b *box) recvAfterUnlock(ch chan int) int {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	return <-ch
}

// deferredHold holds to function end through the defer.
func (b *box) deferredHold(ch chan int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-ch // want "channel receive"
}

// sendSuppressed documents a provably non-blocking send.
func (b *box) sendSuppressed(ch chan int) {
	b.mu.Lock()
	//hybrid:lockhold-ok fixture: channel buffered to capacity; the send cannot block
	ch <- 1
	b.mu.Unlock()
}

// bareSuppression's directive is missing its reason and is reported.
func (b *box) bareSuppression(ch chan int) {
	b.mu.Lock()
	//hybrid:lockhold-ok
	ch <- 1 // want "needs a reason"
	b.mu.Unlock()
}

// publish swaps the notify channel; close never blocks, so the
// broadcast-under-lock idiom stays allowed.
func (b *box) publish() {
	b.mu.Lock()
	close(b.notify)
	b.notify = make(chan struct{})
	b.mu.Unlock()
}

// tryRecv uses a default clause: non-blocking, allowed.
func (b *box) tryRecv(ch chan int) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// blockingSelect has no default clause and can park the goroutine
// while mu is held.
func (b *box) blockingSelect(ch chan int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := 0
	select { // want "blocking select"
	case v = <-ch:
	}
	return v
}

// drainUnderLock ranges over a channel while holding mu.
func (b *box) drainUnderLock(ch chan int) {
	b.mu.Lock()
	for v := range ch { // want "range over channel"
		b.n += v
	}
	b.mu.Unlock()
}

// sleepUnderLock parks every contender for the sleep duration.
func (b *box) sleepUnderLock() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep"
	b.mu.Unlock()
}

// ioUnderLock performs file I/O with mu held.
func (b *box) ioUnderLock(f *os.File) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return f.Close() // want "I/O call os.Close"
}

// wgWait blocks on a WaitGroup with mu held.
func (b *box) wgWait(wg *sync.WaitGroup) {
	b.mu.Lock()
	wg.Wait() // want "sync wait"
	b.mu.Unlock()
}

// nested acquires a second ordered lock: allowed.
func (b *box) nested(other *box) {
	b.mu.Lock()
	other.mu.Lock()
	other.n++
	other.mu.Unlock()
	b.mu.Unlock()
}

// spawn starts a goroutine under the lock; the goroutine body runs on
// its own schedule and is not scanned.
func (b *box) spawn(ch chan int) {
	b.mu.Lock()
	go func() { ch <- 1 }()
	b.mu.Unlock()
}
