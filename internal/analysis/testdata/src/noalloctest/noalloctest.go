// Package noalloctest is a hybridlint fixture for the noalloc
// analyzer: seeded allocating constructs on annotated hot paths next
// to the exempt shapes (growth guards, error returns, alloc-ok
// suppressions) that must stay clean.
package noalloctest

import "fmt"

// point is a small value type for the composite-literal case.
type point struct{ x, y float64 }

// sink is an interface target for the dynamic-dispatch case.
type sink interface{ put(int) }

// buf is a reusable workspace for the growth-guard case.
type buf struct{ v []float64 }

//hybrid:noalloc
func hotMake(n int) []float64 {
	return make([]float64, n) // want "make allocates in hotMake"
}

//hybrid:noalloc
func hotAppend(dst []int, v int) []int {
	dst = append(dst, v) // want "append may grow its backing array"
	return dst
}

//hybrid:noalloc
func hotFmt(x int) string {
	return fmt.Sprint(x) // want "call to allocating stdlib function fmt.Sprint" "argument boxed into interface parameter"
}

//hybrid:noalloc
func hotConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//hybrid:noalloc
func hotLit(a, b float64) point {
	return point{a, b} // want "composite literal allocates"
}

//hybrid:noalloc
func hotClosure(n int) func() int {
	f := func() int { return n } // want "function literal"
	return f
}

//hybrid:noalloc
func hotGo(ch chan int) {
	go drain(ch) // want "go statement allocates a goroutine"
}

func drain(ch chan int) {
	for range ch {
	}
}

//hybrid:noalloc
func hotBytes(b []byte) string {
	return string(b) // want "byte/rune-slice to string conversion allocates"
}

//hybrid:noalloc
func hotTransitive(n int) int {
	return scratchSum(n)
}

// scratchSum is not annotated itself; it is reached from hotTransitive
// and scanned transitively.
func scratchSum(n int) int {
	v := make([]int, n) // want "make allocates in scratchSum"
	return len(v)
}

// ensure grows the workspace at most once per size: the len guard
// marks the branch as a cold growth path, so the make inside it is
// exempt.
//
//hybrid:noalloc
func (b *buf) ensure(n int) {
	if len(b.v) < n {
		b.v = make([]float64, n)
	}
}

// checked allocates only on its failure path: a return whose error
// result is non-nil is exempt, so the fmt.Errorf never fires a
// finding.
//
//hybrid:noalloc
func checked(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative size %d", n)
	}
	return 2 * n, nil
}

// hotDyn dispatches through an interface: statically unresolvable, so
// the call is skipped and the -benchmem CI gates remain the runtime
// backstop.
//
//hybrid:noalloc
func hotDyn(s sink, v int) {
	s.put(v)
}

// suppressed documents an intentional allocation with a reasoned
// statement-level directive.
//
//hybrid:noalloc
func suppressed(n int) []int {
	//hybrid:alloc-ok fixture: scratch buffer built once per call by design
	out := make([]int, n)
	return out
}

// coldCall reaches a function that opts out wholesale: a reasoned
// function-level alloc-ok stops traversal.
//
//hybrid:noalloc
func coldCall() int {
	return len(coldSetup())
}

//hybrid:alloc-ok fixture: one-time setup path, never in the hot loop
func coldSetup() []int {
	return make([]int, 8)
}

// bareSuppression's directive is missing its reason: the directive is
// reported and the allocation is still flagged.
//
//hybrid:noalloc
func bareSuppression(n int) []int {
	//hybrid:alloc-ok
	out := make([]int, n) // want "needs a reason" "make allocates"
	return out
}
