// Package keytest is a hybridlint fixture for the keycomplete
// analyzer: key builders that drop, spell, embed, or deliberately
// ignore fields of a cache-identity struct. The rules binding these
// builders to their structs live in the analysis package's tests.
package keytest

import "fmt"

// Key is the fixture identity struct.
type Key struct {
	Gate string
	VDD  float64
	Seed int64
}

// incompleteKey drops Seed from the key: the seeded violation.
func incompleteKey(k Key) string { // want "does not reference keytest.Key.Seed"
	return fmt.Sprintf("%s|%g", k.Gate, k.VDD)
}

// completeKey spells every field explicitly.
func completeKey(k Key) string {
	return fmt.Sprintf("%s|%g|%d", k.Gate, k.VDD, k.Seed)
}

// wholesaleKey embeds the whole value as a format operand; every field
// is covered.
func wholesaleKey(k Key) string {
	return fmt.Sprintf("%+v", k)
}

// pointerKey covers its fields through a transitive helper: the *Key
// argument is not a wholesale embedding of the value, so coverage
// comes from the selectors inside ptrPart.
func pointerKey(k *Key) string {
	return ptrPart(k)
}

func ptrPart(k *Key) string {
	return fmt.Sprintf("%s|%g|%d", k.Gate, k.VDD, k.Seed)
}

// RunKey mixes identity (Gate) with a run-scoped field (Run).
type RunKey struct {
	Gate string
	Run  int
}

// runKey keys Gate only; its rule ignores Run with a reason.
func runKey(k RunKey) string {
	return k.Gate
}

// runKeyBare is identical, but its rule's ignore entry carries no
// reason and is reported.
func runKeyBare(k RunKey) string { // want "ignores field Run without a reason"
	return k.Gate
}
