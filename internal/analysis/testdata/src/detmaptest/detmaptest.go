// Package detmaptest is a hybridlint fixture for the detmap analyzer:
// a leaking map range, the collect-then-sort idiom, and suppressed
// iterations.
package detmaptest

import "sort"

// leakOrder feeds map iteration order straight into its output slice:
// the seeded violation.
func leakOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want "range over map m in leakOrder"
		out = append(out, k)
	}
	return out
}

// sortedKeys collects then sorts: recognized, no annotation needed.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// total folds commutatively; the reasoned directive suppresses the
// finding.
func total(m map[string]int) int {
	sum := 0
	//hybrid:nondet-ok fixture: commutative integer sum; order-independent
	for _, v := range m {
		sum += v
	}
	return sum
}

// bareSuppression's directive is missing its reason and is reported.
func bareSuppression(m map[string]int) int {
	n := 0
	//hybrid:nondet-ok
	for range m { // want "needs a reason"
		n++
	}
	return n
}
