// Package analysis implements hybridlint: a dependency-free static
// analyzer suite that enforces this repo's cross-cutting invariants at
// lint time — the invariants the dynamic gates (the -benchmem CI
// benchmarks, TestSchemaDriftGuard, the byte-identity loadgen) only
// catch at run time:
//
//   - noalloc: functions annotated //hybrid:noalloc must stay free of
//     allocating constructs, transitively through intra-module calls.
//   - detmap: no range over a map whose iteration order can leak into
//     deterministic output, unless the keys are sorted first or the
//     site carries //hybrid:nondet-ok <reason>.
//   - keycomplete: every exported field of a cache-identity struct must
//     be referenced by each of its key builders (the static
//     generalization of the store's schema-drift guard).
//   - lockhold: no blocking operation (channel op, I/O, sync wait)
//     while holding a named mutex in the serve/session layer — the
//     SSE-hang bug class.
//
// The package uses only go/ast, go/parser and go/types from the
// standard library, so the module keeps its empty go.sum.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
}

// FuncInfo pairs a function declaration with its package, plus the
// types object the declaration defines.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *Package
	Obj  *types.Func
}

// Label renders the function for diagnostics: "Name" for plain
// functions, "(Recv).Name" for methods.
func (fi *FuncInfo) Label() string {
	if fi.Decl.Recv == nil || len(fi.Decl.Recv.List) == 0 {
		return fi.Decl.Name.Name
	}
	return "(" + types.ExprString(fi.Decl.Recv.List[0].Type) + ")." + fi.Decl.Name.Name
}

// Module is the fully loaded, type-checked module: every package's
// syntax and type information plus the directive index, shared by all
// four analyzers.
type Module struct {
	Path string // module path from go.mod
	Root string // directory containing go.mod
	Fset *token.FileSet
	Info *types.Info
	Pkgs map[string]*Package

	// FuncList holds every function declaration in deterministic
	// (package path, file, offset) order; Funcs indexes the same set by
	// the defining types object for call resolution.
	FuncList []*FuncInfo
	Funcs    map[*types.Func]*FuncInfo

	dirs map[dirKey][]Directive
}

// moduleImporter resolves module-local import paths by type-checking
// the package source under the module root, and everything else
// through the stdlib source importer (the toolchain ships no compiled
// export data, so "source" is the only dependency-free compiler mode).
type moduleImporter struct {
	m       *Module
	std     types.Importer
	loading map[string]bool
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := mi.m.Pkgs[path]; ok {
		return p.Types, nil
	}
	if path == mi.m.Path || strings.HasPrefix(path, mi.m.Path+"/") {
		p, err := mi.loadLocal(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return mi.std.Import(path)
}

// loadLocal parses and type-checks one module package.
func (mi *moduleImporter) loadLocal(path string) (*Package, error) {
	if mi.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	mi.loading[path] = true
	defer delete(mi.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, mi.m.Path), "/")
	dir := filepath.Join(mi.m.Root, filepath.FromSlash(rel))
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(mi.m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: mi}
	tpkg, err := conf.Check(path, mi.m.Fset, files, mi.m.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg}
	mi.m.Pkgs[path] = p
	return p, nil
}

// goFilesIn lists the buildable (non-test) Go files of a directory in
// sorted order. The module has no build-constrained files, so no
// constraint evaluation is needed.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	return names, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// Load parses and type-checks every package under the module rooted at
// root (the directory containing go.mod). Directories named testdata,
// or starting with "." or "_", are skipped, matching the go toolchain.
func Load(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Path: modPath,
		Root: root,
		Fset: token.NewFileSet(),
		Info: newInfo(),
		Pkgs: map[string]*Package{},
	}
	mi := &moduleImporter{m: m, loading: map[string]bool{}}
	mi.std = importer.ForCompiler(m.Fset, "source", nil)

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := mi.Import(path); err != nil {
			return nil, err
		}
	}
	m.index(dirs)
	m.indexDirectives()
	return m, nil
}

// LoadDir loads a single directory as a one-package module. Fixture
// tests use this to run analyzers against testdata packages without a
// go.mod of their own.
func LoadDir(dir, path string) (*Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Path: path,
		Root: dir,
		Fset: token.NewFileSet(),
		Info: newInfo(),
		Pkgs: map[string]*Package{},
	}
	mi := &moduleImporter{m: m, loading: map[string]bool{}}
	mi.std = importer.ForCompiler(m.Fset, "source", nil)
	if _, err := mi.loadLocal(path); err != nil {
		return nil, err
	}
	m.index([]string{dir})
	m.indexDirectives()
	return m, nil
}

// index builds the deterministic function list and the object index.
// dirs is the discovery-ordered directory list; packages are indexed
// in that order so analyzer output is stable run to run.
func (m *Module) index(dirs []string) {
	m.Funcs = map[*types.Func]*FuncInfo{}
	for _, dir := range dirs {
		var pkg *Package
		for _, p := range m.Pkgs { //hybrid:nondet-ok single match lookup by dir; order irrelevant
			if p.Dir == dir {
				pkg = p
				break
			}
		}
		if pkg == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := m.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fi := &FuncInfo{Decl: fd, Pkg: pkg, Obj: obj}
				m.FuncList = append(m.FuncList, fi)
				m.Funcs[obj] = fi
			}
		}
	}
}
