package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// KeyRule pins one cache-identity struct to one of its key builders:
// every exported field of Struct must be referenced inside Builder (or
// a module function it calls), be covered by a wholesale use of the
// struct value, or appear in Ignore with a reason explaining why the
// field is run-scoped rather than identity-bearing.
type KeyRule struct {
	// Struct names the identity struct as "import/path.TypeName".
	Struct string
	// Builder names the key builder as "import/path.FuncName" or
	// "import/path.Recv.Method" (receiver named without * or
	// parentheses).
	Builder string
	// Ignore maps run-scoped exported fields to the reason they are
	// excluded from cache identity.
	Ignore map[string]string
}

// KeyComplete is the static generalization of the store's
// TestSchemaDriftGuard: instead of pinning field counts and trusting a
// human to extend every key builder, it proves that each exported
// field of each identity struct is actually referenced by each of its
// key builders. A field is covered when
//
//   - the builder (or a transitively called module function) selects a
//     field of that name or spells it as a composite-literal key, or
//   - the builder uses a value of the struct type wholesale — as a
//     composite-literal element, call argument (e.g. a %+v format
//     operand), map key, or comparison operand — which embeds every
//     field, or
//   - the rule ignores the field with a reason (run-scoped fields that
//     must not contribute to identity).
//
// Field matching is by name, not by receiver type: builders like the
// hdgs-v1 keyString encode spice.TransientOptions identity through the
// nor.Params selectors that feed it, and the name-level check is what
// ties the two schemas together.
func KeyComplete(m *Module, rules []KeyRule) []Diagnostic {
	var diags []Diagnostic
	for _, r := range rules {
		diags = append(diags, checkKeyRule(m, r)...)
	}
	sortDiagnostics(diags)
	return diags
}

func checkKeyRule(m *Module, r KeyRule) []Diagnostic {
	st, named, err := resolveStruct(m, r.Struct)
	if err != nil {
		return []Diagnostic{{Analyzer: "keycomplete", Message: fmt.Sprintf("bad rule: %v", err)}}
	}
	fi, err := resolveBuilder(m, r.Builder)
	if err != nil {
		return []Diagnostic{{Analyzer: "keycomplete", Message: fmt.Sprintf("bad rule: %v", err)}}
	}
	cov := &coverage{names: map[string]bool{}, target: named}
	cov.walk(m, fi, map[*types.Func]bool{})

	var diags []Diagnostic
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		if reason, ok := r.Ignore[f.Name()]; ok {
			if reason == "" {
				diags = append(diags, Diagnostic{
					Pos:      m.Fset.Position(fi.Decl.Pos()),
					Analyzer: "keycomplete",
					Message:  fmt.Sprintf("rule for %s ignores field %s without a reason", r.Struct, f.Name()),
				})
			}
			continue
		}
		if cov.wholesale || cov.names[f.Name()] {
			continue
		}
		missing = append(missing, f.Name())
	}
	for _, name := range missing {
		diags = append(diags, Diagnostic{
			Pos:      m.Fset.Position(fi.Decl.Pos()),
			Analyzer: "keycomplete",
			Message: fmt.Sprintf("key builder %s does not reference %s.%s: two benches differing only in %s would share a cache entry; encode the field or ignore it with a reason",
				r.Builder, r.Struct, name, name),
		})
	}
	return diags
}

// resolveStruct finds an "import/path.TypeName" struct type.
func resolveStruct(m *Module, spec string) (*types.Struct, types.Type, error) {
	pkgPath, name, ok := cutLastSlashDot(spec)
	if !ok {
		return nil, nil, fmt.Errorf("struct spec %q is not import/path.TypeName", spec)
	}
	pkg := m.Pkgs[pkgPath]
	if pkg == nil {
		return nil, nil, fmt.Errorf("struct spec %q: package %s not in module", spec, pkgPath)
	}
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil, nil, fmt.Errorf("struct spec %q: no such type", spec)
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, nil, fmt.Errorf("struct spec %q: %s is not a struct", spec, name)
	}
	return st, obj.Type(), nil
}

// resolveBuilder finds an "import/path.Func" or "import/path.Recv.Method"
// function declaration.
func resolveBuilder(m *Module, spec string) (*FuncInfo, error) {
	pkgPath, rest, ok := cutLastSlashDot(spec)
	if !ok {
		return nil, fmt.Errorf("builder spec %q is not import/path.Func", spec)
	}
	recv, name, isMethod := strings.Cut(rest, ".")
	if !isMethod {
		name, recv = recv, ""
	}
	for _, fi := range m.FuncList {
		if fi.Pkg.Path != pkgPath || fi.Decl.Name.Name != name {
			continue
		}
		if recvName(fi.Decl) == recv {
			return fi, nil
		}
	}
	return nil, fmt.Errorf("builder spec %q: no such function", spec)
}

// recvName renders a declaration's receiver type name, "" for plain
// functions and pointers stripped ("*ParamCache" -> "ParamCache").
func recvName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return types.ExprString(t)
}

// cutLastSlashDot splits "a/b/c.Name.Sub" into ("a/b/c", "Name.Sub").
func cutLastSlashDot(spec string) (pkgPath, rest string, ok bool) {
	slash := strings.LastIndex(spec, "/")
	dot := strings.Index(spec[slash+1:], ".")
	if dot < 0 {
		return "", "", false
	}
	dot += slash + 1
	return spec[:dot], spec[dot+1:], true
}

// coverage accumulates which field names a builder references, and
// whether the struct value is used wholesale.
type coverage struct {
	names     map[string]bool
	target    types.Type
	wholesale bool
}

// walk scans one function and recurses into resolvable module callees.
func (cov *coverage) walk(m *Module, fi *FuncInfo, seen map[*types.Func]bool) {
	if seen[fi.Obj] || fi.Decl.Body == nil {
		return
	}
	seen[fi.Obj] = true

	// Positions that appear as the base expression of a selector: a
	// target-typed value there is being projected, not used wholesale.
	selBase := map[ast.Expr]bool{}
	var callees []*FuncInfo
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			selBase[ast.Unparen(n.X)] = true
			if sel, ok := m.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				cov.names[n.Sel.Name] = true
			}
		case *ast.CompositeLit:
			if t := m.Info.TypeOf(n); t != nil {
				if _, isStruct := t.Underlying().(*types.Struct); isStruct {
					for _, elt := range n.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if id, ok := kv.Key.(*ast.Ident); ok {
								cov.names[id.Name] = true
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if fn := staticCallee(m, n); fn != nil {
				if target := m.Funcs[fn.Origin()]; target != nil {
					callees = append(callees, target)
				}
			}
		}
		return true
	})
	// Wholesale detection: any target-typed expression that is not the
	// base of a field selection embeds every field (composite element,
	// call argument, comparison, map key, assignment source).
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || selBase[e] {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr, *ast.IndexExpr:
		default:
			return true
		}
		if t := m.Info.TypeOf(e); t != nil && types.Identical(t, cov.target) {
			cov.wholesale = true
		}
		return true
	})
	for _, c := range callees {
		cov.walk(m, c, seen)
	}
}

// staticCallee resolves a call to a statically known *types.Func, nil
// for builtins, conversions, func values and interface dispatch.
func staticCallee(m *Module, n *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(n.Fun).(type) {
	case *ast.Ident:
		fn, _ := m.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := m.Info.Selections[f]; ok {
			if sel.Kind() != types.MethodVal || types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := m.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// sortedRuleFields lists a rule's ignore keys in stable order (used in
// fixture tests and debugging output).
func sortedRuleFields(r KeyRule) []string {
	out := make([]string, 0, len(r.Ignore))
	for name := range r.Ignore {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
