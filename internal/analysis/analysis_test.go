package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture packages under testdata/src carry golden diagnostics as
// trailing comments of the form
//
//	// want "pattern" "pattern"
//
// where each pattern is a regexp matched against the message of a
// diagnostic reported on that line. Every diagnostic must match a want
// on its line, and every want must be matched by a diagnostic — so a
// fixture fails both when an analyzer misses a seeded violation and
// when it flags a construct that must stay allowed.

// wantRe extracts the quoted patterns of one want comment.
var wantRe = regexp.MustCompile(`"([^"]*)"`)

type wantDiag struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// collectWants parses a fixture module's want comments.
func collectWants(t *testing.T, m *Module) []*wantDiag {
	t.Helper()
	var wants []*wantDiag
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					for _, match := range wantRe.FindAllStringSubmatch(rest, -1) {
						re, err := regexp.Compile(match[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, match[1], err)
						}
						wants = append(wants, &wantDiag{file: pos.Filename, line: pos.Line, re: re, raw: match[1]})
					}
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<name> and checks the analyzer's
// diagnostics against the fixture's want comments.
func runFixture(t *testing.T, name string, run func(*Module) []Diagnostic) {
	t.Helper()
	m, err := LoadDir(filepath.Join("testdata", "src", name), name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	diags := run(m)
	wants := collectWants(t, m)
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

func TestNoAllocFixture(t *testing.T) {
	runFixture(t, "noalloctest", NoAlloc)
}

func TestDetMapFixture(t *testing.T) {
	runFixture(t, "detmaptest", DetMap)
}

func TestKeyCompleteFixture(t *testing.T) {
	runFixture(t, "keytest", func(m *Module) []Diagnostic {
		return KeyComplete(m, []KeyRule{
			{Struct: "keytest.Key", Builder: "keytest.incompleteKey"},
			{Struct: "keytest.Key", Builder: "keytest.completeKey"},
			{Struct: "keytest.Key", Builder: "keytest.wholesaleKey"},
			{Struct: "keytest.Key", Builder: "keytest.pointerKey"},
			{Struct: "keytest.RunKey", Builder: "keytest.runKey",
				Ignore: map[string]string{"Run": "fixture: run-scoped, never part of identity"}},
			{Struct: "keytest.RunKey", Builder: "keytest.runKeyBare",
				Ignore: map[string]string{"Run": ""}},
		})
	})
}

func TestLockHoldFixture(t *testing.T) {
	runFixture(t, "locktest", func(m *Module) []Diagnostic {
		return LockHold(m, []string{"locktest"})
	})
}

// TestRepoTreeClean runs the full default suite against the real
// module, mirroring CI's lint-invariants job: the tree must stay
// finding-free, so any new violation fails go test as well as the
// standalone hybridlint run.
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	m, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(m.Pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(m.Pkgs))
	}
	for _, d := range RunAll(m) {
		t.Errorf("%s", d)
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text, name, reason string
	}{
		{"//hybrid:noalloc", "noalloc", ""},
		{"//hybrid:alloc-ok cold path", "alloc-ok", "cold path"},
		{"//hybrid:nondet-ok commutative sum", "nondet-ok", "commutative sum"},
		{"// plain comment", "", ""},
		{"//hybrid: trailing space name", "", "trailing space name"},
	}
	for _, c := range cases {
		name, reason := parseDirective(c.text)
		if name != c.name || reason != c.reason {
			t.Errorf("parseDirective(%q) = %q, %q; want %q, %q", c.text, name, reason, c.name, c.reason)
		}
	}
}

// TestDefaultRuleIgnoresHaveReasons pins rule hygiene: every ignored
// field in the repo's default key rules must carry a reason, the same
// property keycomplete enforces on fixture rules.
func TestDefaultRuleIgnoresHaveReasons(t *testing.T) {
	m := &Module{Path: "hybriddelay"}
	for _, r := range DefaultKeyRules(m) {
		for _, name := range sortedRuleFields(r) {
			if r.Ignore[name] == "" {
				t.Errorf("rule %s -> %s ignores %s without a reason", r.Struct, r.Builder, name)
			}
		}
	}
}
