package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// noallocDeny lists stdlib packages whose exported functions allocate
// on essentially every call (formatting, error construction, string
// building, reflection, I/O). Calls into them from a //hybrid:noalloc
// path are findings; calls into the rest of the stdlib (math, etc.)
// are trusted without traversal.
var noallocDeny = map[string]bool{
	"bufio":         true,
	"bytes":         true,
	"encoding/csv":  true,
	"encoding/json": true,
	"errors":        true,
	"fmt":           true,
	"io":            true,
	"log":           true,
	"net":           true,
	"net/http":      true,
	"os":            true,
	"reflect":       true,
	"regexp":        true,
	"sort":          true,
	"strconv":       true,
	"strings":       true,
}

// NoAlloc checks every function annotated //hybrid:noalloc — and every
// module function statically reachable from one — for allocating
// constructs: make/new/append, composite and function literals, string
// concatenation, go statements, interface boxing at call arguments,
// and calls into allocating stdlib packages.
//
// Three code shapes are exempt, mirroring how the hot paths are
// actually written:
//
//   - growth guards: an if statement whose condition calls len or cap
//     (workspace ensure/grow-once patterns — cold after the first call);
//   - error returns: a return whose final error result is non-nil
//     (fmt.Errorf on failure paths never runs in the steady state);
//   - panics: arguments of a panic call (crash paths).
//
// A statement or whole function carrying //hybrid:alloc-ok <reason> is
// exempt too; function-level alloc-ok also stops traversal into it.
// Dynamic calls (interface methods, func values) cannot be resolved
// statically and are skipped — the -benchmem CI gates remain the
// runtime backstop for those edges.
func NoAlloc(m *Module) []Diagnostic {
	c := &noallocChecker{m: m, seen: map[*types.Func]bool{}}
	for _, fi := range m.FuncList {
		if m.funcDirective(fi.Decl, "noalloc") != nil {
			c.check(fi, fi.Label())
		}
	}
	sortDiagnostics(c.diags)
	return c.diags
}

type noallocChecker struct {
	m     *Module
	seen  map[*types.Func]bool
	diags []Diagnostic
}

func (c *noallocChecker) report(pos token.Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Pos:      c.m.Fset.Position(pos),
		Analyzer: "noalloc",
		Message:  fmt.Sprintf(format, args...),
	})
}

// check scans one function and recurses into its resolvable module
// callees. Each function is scanned once even when reachable from
// several roots.
func (c *noallocChecker) check(fi *FuncInfo, root string) {
	if c.seen[fi.Obj] {
		return
	}
	c.seen[fi.Obj] = true
	if d := c.m.funcDirective(fi.Decl, "alloc-ok"); d != nil {
		if d.Reason == "" {
			c.report(fi.Decl.Pos(), "//hybrid:alloc-ok on %s needs a reason", fi.Label())
		}
		return
	}
	if fi.Decl.Body == nil {
		return
	}
	w := &noallocWalker{c: c, fi: fi, root: root}
	w.collectExempt(fi.Decl.Body)
	w.scan(fi.Decl.Body)
	for _, callee := range w.callees {
		c.check(callee, root)
	}
}

type posRange struct{ lo, hi token.Pos }

type noallocWalker struct {
	c       *noallocChecker
	fi      *FuncInfo
	root    string
	exempt  []posRange
	callees []*FuncInfo
}

func (w *noallocWalker) flag(pos token.Pos, desc string) {
	for _, r := range w.exempt {
		if pos >= r.lo && pos <= r.hi {
			return
		}
	}
	w.c.report(pos, "%s in %s (//hybrid:noalloc root: %s)", desc, w.fi.Label(), w.root)
}

func (w *noallocWalker) exemptNode(n ast.Node) bool {
	for _, r := range w.exempt {
		if n.Pos() >= r.lo && n.Pos() <= r.hi {
			return true
		}
	}
	return false
}

// collectExempt records the position ranges the exemptions cover.
func (w *noallocWalker) collectExempt(body *ast.BlockStmt) {
	m := w.c.m
	sig := w.fi.Obj.Type().(*types.Signature)
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(ast.Stmt); ok {
			if d := m.directiveAt(n.Pos(), "alloc-ok"); d != nil {
				if d.Reason == "" {
					w.c.report(n.Pos(), "//hybrid:alloc-ok in %s needs a reason", w.fi.Label())
				} else {
					w.exempt = append(w.exempt, posRange{n.Pos(), n.End()})
				}
			}
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			if condCallsLenOrCap(m, n.Cond) {
				w.exempt = append(w.exempt, posRange{n.Pos(), n.End()})
			}
		case *ast.ReturnStmt:
			if isErrorReturn(m, sig, n) {
				w.exempt = append(w.exempt, posRange{n.Pos(), n.End()})
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := m.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					w.exempt = append(w.exempt, posRange{n.Pos(), n.End()})
				}
			}
		}
		return true
	})
}

// condCallsLenOrCap reports whether an if condition calls the len or
// cap builtin — the workspace growth-guard shape.
func condCallsLenOrCap(m *Module, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := m.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
				found = true
			}
		}
		return true
	})
	return found
}

// isErrorReturn reports whether a return statement's final result is an
// error that is syntactically not nil — a failure path that never runs
// in the allocation-free steady state.
func isErrorReturn(m *Module, sig *types.Signature, ret *ast.ReturnStmt) bool {
	res := sig.Results()
	if res.Len() == 0 || len(ret.Results) != res.Len() {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return false
	}
	if id, ok := ret.Results[len(ret.Results)-1].(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

// scan walks the body flagging allocating constructs and collecting
// resolvable module callees.
func (w *noallocWalker) scan(body *ast.BlockStmt) {
	m := w.c.m
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.flag(n.Pos(), "function literal (closure) allocates")
			return false // the literal is the finding; its body runs as its own function
		case *ast.GoStmt:
			w.flag(n.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			w.flag(n.Pos(), "composite literal allocates")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(m.Info.TypeOf(n)) {
				w.flag(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// call classifies one call expression: allocating builtin, conversion,
// denylisted stdlib call, module callee to traverse, or dynamic call
// (skipped). It also flags concrete values boxed into interface-typed
// parameters.
func (w *noallocWalker) call(n *ast.CallExpr) {
	if w.exemptNode(n) {
		return // exempt regions are neither flagged nor traversed
	}
	m := w.c.m
	fun := ast.Unparen(n.Fun)

	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = m.Info.Uses[f]
	case *ast.SelectorExpr:
		if sel, ok := m.Info.Selections[f]; ok {
			// Method or field call through a value.
			if sel.Kind() == types.FieldVal {
				return // func-typed field: dynamic
			}
			if types.IsInterface(sel.Recv()) {
				return // interface dispatch: unresolvable statically
			}
			obj = sel.Obj()
		} else {
			obj = m.Info.Uses[f.Sel] // package-qualified reference
		}
	default:
		return // func-typed expression: dynamic
	}

	switch o := obj.(type) {
	case *types.Builtin:
		switch o.Name() {
		case "make":
			w.flag(n.Pos(), "make allocates")
		case "new":
			w.flag(n.Pos(), "new allocates")
		case "append":
			w.flag(n.Pos(), "append may grow its backing array")
		}
		return
	case *types.TypeName:
		// Conversion T(x).
		if types.IsInterface(o.Type()) && len(n.Args) == 1 && !pointerShaped(m.Info.TypeOf(n.Args[0])) {
			w.flag(n.Pos(), "conversion to interface boxes its operand")
		}
		if isStringType(o.Type()) && len(n.Args) == 1 {
			if at := m.Info.TypeOf(n.Args[0]); at != nil {
				if _, ok := at.Underlying().(*types.Slice); ok {
					w.flag(n.Pos(), "byte/rune-slice to string conversion allocates")
				}
			}
		}
		return
	case *types.Func:
		w.boxedArgs(n)
		pkg := o.Pkg()
		if pkg == nil {
			return
		}
		if pkg.Path() == m.Path || (m.Pkgs[pkg.Path()] != nil) {
			if fi := m.Funcs[o.Origin()]; fi != nil {
				w.callees = append(w.callees, fi)
			}
			return
		}
		if noallocDeny[pkg.Path()] {
			w.flag(n.Pos(), fmt.Sprintf("call to allocating stdlib function %s.%s", pkg.Name(), o.Name()))
		}
	}
}

// boxedArgs flags concrete, non-pointer-shaped arguments passed to
// interface-typed parameters: the conversion stores the value in an
// interface, which escapes.
func (w *noallocWalker) boxedArgs(n *ast.CallExpr) {
	m := w.c.m
	sig, ok := m.Info.TypeOf(n.Fun).(*types.Signature)
	if ok && sig != nil {
		params := sig.Params()
		for i, arg := range n.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if n.Ellipsis.IsValid() {
					continue // forwarding an existing slice: no per-arg boxing
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if pt == nil || !types.IsInterface(pt) {
				continue
			}
			at := m.Info.TypeOf(arg)
			if at == nil || types.IsInterface(at) || isUntypedNil(at) || pointerShaped(at) {
				continue
			}
			w.flag(arg.Pos(), "argument boxed into interface parameter")
		}
	}
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of the type fit an interface
// word without a heap copy (pointers, channels, maps, funcs).
func pointerShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
