package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// lockIODeny lists stdlib packages whose calls perform I/O and can
// block indefinitely; calling into them under a held mutex stalls
// every other path that needs the lock.
var lockIODeny = map[string]bool{
	"bufio":    true,
	"io":       true,
	"net":      true,
	"net/http": true,
	"os":       true,
}

// LockHold flags blocking operations performed while a named mutex is
// held, in the packages listed in scope — the bug class behind the PR 9
// SSE hang (a handler blocking on a dead notify channel). Within a
// region bracketed by x.Lock()/x.Unlock() (or held to function end by
// a defer x.Unlock()), the following are findings:
//
//   - channel sends, receives, and ranges over channels;
//   - select statements without a default clause (blocking selects);
//   - calls into net/os/io packages, time.Sleep, and sync waits
//     (WaitGroup.Wait, Cond.Wait).
//
// Non-blocking constructs stay allowed: close(), selects with a
// default clause, and acquiring a second (ordered) mutex. Function
// literal and go-statement bodies are skipped — they run on their own
// goroutines or schedules, not under the lock (callbacks invoked under
// a lock are a documented blind spot; keep them synchronous and
// channel-free). A statement carrying //hybrid:lockhold-ok <reason> is
// exempt.
func LockHold(m *Module, scope []string) []Diagnostic {
	inScope := map[string]bool{}
	for _, p := range scope {
		inScope[p] = true
	}
	s := &lockholdScan{m: m}
	for _, fi := range m.FuncList {
		if !inScope[fi.Pkg.Path] || fi.Decl.Body == nil {
			continue
		}
		s.fi = fi
		s.block(fi.Decl.Body.List, nil)
	}
	sortDiagnostics(s.diags)
	return s.diags
}

type heldLock struct {
	name string // rendered mutex expression, e.g. "j.mu"
	pos  token.Pos
}

type lockholdScan struct {
	m     *Module
	fi    *FuncInfo
	diags []Diagnostic
}

func (s *lockholdScan) flag(pos token.Pos, desc string, held []heldLock) {
	h := held[len(held)-1]
	at := s.m.Fset.Position(h.pos)
	s.diags = append(s.diags, Diagnostic{
		Pos:      s.m.Fset.Position(pos),
		Analyzer: "lockhold",
		Message: fmt.Sprintf("%s in %s while holding %s (locked at line %d); blocking under a mutex can wedge every contender — release first or annotate //hybrid:lockhold-ok <reason>",
			desc, s.fi.Label(), h.name, at.Line),
	})
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
	opDeferUnlock
)

// classify recognizes mutex statements: x.Lock()/x.RLock(),
// x.Unlock()/x.RUnlock() and defer x.Unlock().
func (s *lockholdScan) classify(st ast.Stmt) (lockOp, string) {
	var call *ast.CallExpr
	deferred := false
	switch st := st.(type) {
	case *ast.ExprStmt:
		call, _ = st.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = st.Call
		deferred = true
	}
	if call == nil {
		return opNone, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	obj, _ := s.m.Info.Uses[sel.Sel].(*types.Func)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return opNone, ""
	}
	name := types.ExprString(sel.X)
	switch obj.Name() {
	case "Lock", "RLock":
		if deferred {
			return opNone, ""
		}
		return opLock, name
	case "Unlock", "RUnlock":
		if deferred {
			return opDeferUnlock, name
		}
		return opUnlock, name
	}
	return opNone, ""
}

// block walks one statement list tracking the held-lock set.
func (s *lockholdScan) block(stmts []ast.Stmt, held []heldLock) {
	held = append([]heldLock(nil), held...)
	for _, st := range stmts {
		if d := s.m.directiveAt(st.Pos(), "lockhold-ok"); d != nil {
			if d.Reason == "" {
				s.diags = append(s.diags, Diagnostic{
					Pos:      s.m.Fset.Position(st.Pos()),
					Analyzer: "lockhold",
					Message:  fmt.Sprintf("//hybrid:lockhold-ok in %s needs a reason", s.fi.Label()),
				})
			}
			continue
		}
		switch op, name := s.classify(st); op {
		case opLock:
			held = append(held, heldLock{name: name, pos: st.Pos()})
			continue
		case opUnlock:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].name == name {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
			continue
		case opDeferUnlock:
			continue // the matching Lock stays held to function end
		}
		s.stmt(st, held)
	}
}

// stmt dispatches one statement: composite statements recurse with the
// current held set, and when a lock is held the statement's
// expressions are scanned for blocking constructs.
func (s *lockholdScan) stmt(st ast.Stmt, held []heldLock) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		s.block(st.List, held)
	case *ast.IfStmt:
		if len(held) > 0 {
			s.exprs(st.Init, held)
			s.exprs(st.Cond, held)
		}
		s.block(st.Body.List, held)
		if st.Else != nil {
			s.stmt(st.Else, held)
		}
	case *ast.ForStmt:
		if len(held) > 0 {
			s.exprs(st.Init, held)
			s.exprs(st.Cond, held)
			s.exprs(st.Post, held)
		}
		s.block(st.Body.List, held)
	case *ast.RangeStmt:
		if len(held) > 0 {
			if t := s.m.Info.TypeOf(st.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					s.flag(st.Pos(), "range over channel", held)
				}
			}
			s.exprs(st.X, held)
		}
		s.block(st.Body.List, held)
	case *ast.SwitchStmt:
		if len(held) > 0 {
			s.exprs(st.Init, held)
			s.exprs(st.Tag, held)
		}
		for _, c := range st.Body.List {
			s.block(c.(*ast.CaseClause).Body, held)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			s.block(c.(*ast.CaseClause).Body, held)
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(st) {
			s.flag(st.Pos(), "blocking select (no default clause)", held)
		}
		for _, c := range st.Body.List {
			s.block(c.(*ast.CommClause).Body, held)
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	default:
		if len(held) > 0 {
			s.exprs(st, held)
		}
	}
}

func selectHasDefault(st *ast.SelectStmt) bool {
	for _, c := range st.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// exprs scans a simple statement or expression subtree for blocking
// constructs, skipping function-literal and go-statement bodies (they
// do not execute under the caller's lock).
func (s *lockholdScan) exprs(n ast.Node, held []heldLock) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			s.flag(n.Pos(), "channel send", held)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.flag(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			s.blockingCall(n, held)
		}
		return true
	})
}

// blockingCall flags calls that can block or perform I/O.
func (s *lockholdScan) blockingCall(n *ast.CallExpr, held []heldLock) {
	sel, ok := n.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, _ := s.m.Info.Uses[sel.Sel].(*types.Func)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch pkg := obj.Pkg().Path(); {
	case lockIODeny[pkg]:
		s.flag(n.Pos(), fmt.Sprintf("I/O call %s.%s", obj.Pkg().Name(), obj.Name()), held)
	case pkg == "time" && obj.Name() == "Sleep":
		s.flag(n.Pos(), "time.Sleep", held)
	case pkg == "sync" && obj.Name() == "Wait":
		s.flag(n.Pos(), "sync wait ("+types.ExprString(sel.X)+".Wait)", held)
	}
}
