package analysis

// DefaultKeyRules pins this repo's cache-identity invariants: every
// struct that contributes to golden/param/store/symbolic identity,
// against every builder that spells its key. TestSchemaDriftGuard in
// internal/store remains the runtime backstop (field-count pins); these
// rules prove the stronger property that each field is actually
// encoded.
func DefaultKeyRules(m *Module) []KeyRule {
	p := m.Path
	// Run-scoped TransientOptions fields: set per transient from state
	// that is already part of the cache identity (stimulus config +
	// seed + netlist content key) or pinned to solver defaults by the
	// bench layer — they carry no independent identity.
	transientIgnore := map[string]string{
		"TStart":            "simulation window; derived from the keyed stimulus",
		"TStop":             "simulation window; derived from the keyed stimulus",
		"MinStep":           "left at the solver default by the bench layer",
		"Breakpoints":       "derived from the keyed stimulus edges",
		"InitialConditions": "derived from the keyed netlist initial state",
		"Record":            "derived from the bench/netlist identity already in the key",
		"Newton":            "solver defaults; never varied by the bench layer",
	}
	return []KeyRule{
		// The persistent hdgs-v1 store spells every field explicitly.
		{Struct: p + "/internal/nor.Params", Builder: p + "/internal/store.keyString"},
		{Struct: p + "/internal/spice.TransientOptions", Builder: p + "/internal/store.keyString", Ignore: transientIgnore},
		// The in-process golden cache keys embed the whole Params value.
		{Struct: p + "/internal/nor.Params", Builder: p + "/internal/eval.CachedSource.Golden"},
		{Struct: p + "/internal/nor.Params", Builder: p + "/internal/eval.CircuitKey"},
		// The parametrization cache key embeds the whole Params value.
		{Struct: p + "/internal/nor.Params", Builder: p + "/internal/eval.ParamCache.OperatingPoint"},
		// The symbolic-factorization cache scope embeds Params via %+v.
		{Struct: p + "/internal/nor.Params", Builder: p + "/internal/nor.SymbolicScope"},
		// The symbolic cache key must cover every sparse option.
		{Struct: p + "/internal/la/sparse.Options", Builder: p + "/internal/la/sparse.cacheKey"},
	}
}

// DefaultLockScope lists the packages lockhold checks: the service
// layer, where a blocking call under a mutex wedges handlers and
// subscribers (the PR 9 SSE-hang class).
func DefaultLockScope(m *Module) []string {
	return []string{
		m.Path + "/internal/serve",
		m.Path + "/internal/session",
	}
}

// RunAll runs the four analyzers with the repo's default configuration
// and returns all findings in position order.
func RunAll(m *Module) []Diagnostic {
	var out []Diagnostic
	out = append(out, NoAlloc(m)...)
	out = append(out, DetMap(m)...)
	out = append(out, KeyComplete(m, DefaultKeyRules(m))...)
	out = append(out, LockHold(m, DefaultLockScope(m))...)
	sortDiagnostics(out)
	return out
}
