package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// DetMap flags every range over a map in non-test module code: map
// iteration order is randomized per run, so any map range on a path
// that feeds deterministic output (report/CSV/JSON encoders, /metrics,
// CLI tables) or a cache/store key builder is a byte-identity hazard.
//
// Two shapes pass without annotation:
//
//   - collect-then-sort: the range body appends keys/values into
//     slices and at least one of those slices is passed to a sort (or
//     slices) package call later in the same function;
//   - an explicit //hybrid:nondet-ok <reason> on the range statement,
//     for iterations that are genuinely order-independent (per-key map
//     writes, commutative folds, internal bookkeeping).
//
// The analyzer runs module-wide rather than attempting path
// sensitivity: every surviving iteration is therefore either sorted or
// carries a human-auditable reason.
func DetMap(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, fi := range m.FuncList {
		if fi.Decl.Body == nil {
			continue
		}
		fi := fi
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := m.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if d := m.directiveAt(rs.Pos(), "nondet-ok"); d != nil {
				if d.Reason == "" {
					diags = append(diags, Diagnostic{
						Pos:      m.Fset.Position(rs.Pos()),
						Analyzer: "detmap",
						Message:  fmt.Sprintf("//hybrid:nondet-ok in %s needs a reason", fi.Label()),
					})
				}
				return true
			}
			if collectThenSort(m, fi.Decl, rs) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      m.Fset.Position(rs.Pos()),
				Analyzer: "detmap",
				Message: fmt.Sprintf("range over map %s in %s: iteration order is nondeterministic; sort the keys first or annotate //hybrid:nondet-ok <reason>",
					types.ExprString(rs.X), fi.Label()),
			})
			return true
		})
	}
	sortDiagnostics(diags)
	return diags
}

// collectThenSort recognizes the sorted-iteration idiom: the range body
// appends into one or more slices, and the enclosing function later
// passes one of those slices to a sort call.
func collectThenSort(m *Module, decl *ast.FuncDecl, rs *ast.RangeStmt) bool {
	targets := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := m.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				if first, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && m.objOf(first) == m.objOf(lhs) {
					if obj := m.objOf(lhs); obj != nil {
						targets[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(targets) == 0 {
		return false
	}
	sorted := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := m.Info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		// Unwrap a sort.Interface adapter conversion: sort.Sort(byName(x)).
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			arg = ast.Unparen(conv.Args[0])
		}
		if id, ok := arg.(*ast.Ident); ok && targets[m.objOf(id)] {
			sorted = true
		}
		return true
	})
	return sorted
}

// objOf resolves an identifier to its object, definition or use.
func (m *Module) objOf(id *ast.Ident) types.Object {
	if o := m.Info.Uses[id]; o != nil {
		return o
	}
	return m.Info.Defs[id]
}
