// parametrize demonstrates the §V calibration workflow on externally
// supplied characteristic Charlie delays — here the paper's own SPICE
// values from Fig. 2 — reproducing the Table I fit including the
// 18 ps pure delay.
//
// Run with:
//
//	go run ./examples/parametrize
package main

import (
	"fmt"
	"log"

	"hybriddelay"
)

func main() {
	// The paper's measured 15nm FinFET values (read off Fig. 2b/2d).
	target := hybriddelay.Characteristic{
		FallMinusInf: hybriddelay.Ps(38),
		FallZero:     hybriddelay.Ps(28),
		FallPlusInf:  hybriddelay.Ps(40),
		RiseMinusInf: hybriddelay.Ps(55.6),
		RiseZero:     hybriddelay.Ps(56.8),
		RisePlusInf:  hybriddelay.Ps(53.4),
	}

	// The §IV impossibility: without a pure delay, fall(-inf)/fall(0)
	// would need to be ~ (R3+R4)/R3 ~ 2, but the measured ratio is
	// 38/28 = 1.36. AutoDMin picks the pure delay that restores ratio 2.
	dmin := hybriddelay.AutoDMin(target)
	fmt.Printf("measured falling ratio: %.3f (unfittable; the model wants ~2)\n",
		target.FallMinusInf/target.FallZero)
	fmt.Printf("auto pure delay: %.1f ps (paper: 18 ps)\n", hybriddelay.ToPs(dmin))
	fmt.Printf("shifted ratio: %.3f\n\n",
		(target.FallMinusInf-dmin)/(target.FallZero-dmin))

	// Least-squares fit of R1..R4 and CN (CO pinned — only RC products
	// matter, see DESIGN.md).
	p, rep, err := hybriddelay.FitCharacteristic(target, hybriddelay.DefaultSupply(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fitted parameters (compare paper Table I):")
	fmt.Printf("  %s\n", p)
	fmt.Printf("  paper: %s\n\n", hybriddelay.TableI())

	fmt.Println("achieved vs target [ps]:")
	names := []string{"fall(-inf)", "fall(0)", "fall(+inf)", "rise(-inf)", "rise(0)", "rise(+inf)"}
	a := rep.Achieved.AsSlice()
	w := target.AsSlice()
	for i := range names {
		fmt.Printf("  %-11s %6.2f  (target %6.2f)\n", names[i], hybriddelay.ToPs(a[i]), hybriddelay.ToPs(w[i]))
	}
	fmt.Println("\nThe rising -inf and 0 targets cannot both be met: the model's")
	fmt.Println("delta_rise is V_N-invariant in mode (1,1) (paper Fig. 6); the fit")
	fmt.Println("compromises between them exactly as the paper describes.")
}
