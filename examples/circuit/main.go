// circuit composes a small multi-gate netlist in the event-driven
// simulator: a hybrid 2-input NOR channel (the paper's model, carrying
// MIS state) feeding a three-stage inverter chain of involution
// exp-channels. It demonstrates how MIS-induced glitches at the NOR
// output propagate — or die — down the chain.
//
// Run with:
//
//	go run ./examples/circuit
package main

import (
	"fmt"
	"log"

	"hybriddelay"
)

func main() {
	p := hybriddelay.TableI()

	run := func(sepPs float64) (norEvents, outEvents int) {
		sim := hybriddelay.NewSimulator()
		a := hybriddelay.NewNet("a", true) // both inputs high: output low
		b := hybriddelay.NewNet("b", true)
		norOut := hybriddelay.NewNet("nor_out", false)
		norOut.Record()

		// The paper's hybrid NOR channel (V_N worst case GND).
		if _, err := hybriddelay.NewNORChannel(sim, p, a, b, norOut, 0); err != nil {
			log.Fatal(err)
		}

		// Three inverter stages with exp-channels behind the NOR.
		exp := hybriddelay.ExpChannel{TauUp: 30e-12, TauDown: 25e-12, DMin: 8e-12}
		out, err := hybriddelay.InverterChain(sim, norOut, 3, func(i int, from, to *hybriddelay.Net) {
			hybriddelay.NewChannel(sim, fmt.Sprintf("ch%d", i), from, to, exp,
				hybriddelay.PolicyInvolution)
		})
		if err != nil {
			log.Fatal(err)
		}
		out.Record()

		// Stimulus: both inputs drop (NOR output rises), then input A
		// rises again sepPs later — producing an output pulse of roughly
		// sepPs width at the NOR, which the chain may or may not carry.
		t0 := hybriddelay.Ps(500)
		if err := hybriddelay.Drive(sim, a, hybriddelay.NewTrace(true, t0, t0+hybriddelay.Ps(sepPs))); err != nil {
			log.Fatal(err)
		}
		if err := hybriddelay.Drive(sim, b, hybriddelay.NewTrace(true, t0)); err != nil {
			log.Fatal(err)
		}
		if err := sim.Run(10e-9); err != nil {
			log.Fatal(err)
		}
		return norOut.Trace().NumEvents(), out.Trace().NumEvents()
	}

	fmt.Println("pulse created at the NOR by re-raising input A after `sep`:")
	fmt.Printf("%10s %18s %18s\n", "sep [ps]", "NOR transitions", "chain-out transitions")
	for _, sep := range []float64{10, 20, 30, 40, 60, 80, 100, 140, 220, 400} {
		n, o := run(sep)
		fmt.Printf("%10.0f %18d %18d\n", sep, n, o)
	}
	fmt.Println("\nShort separations die at the NOR itself (its trajectory never")
	fmt.Println("recrosses V_th); marginal ones emerge but shrink through the")
	fmt.Println("involution chain and vanish; long ones propagate to the end.")
}
