// circuit composes a small multi-gate circuit through the netlist API:
// a declarative description of a hybrid 2-input NOR (the paper's model,
// carrying MIS state) feeding a three-stage inverter chain, elaborated
// into the event-driven simulator with a custom per-instance channel
// policy — the NOR gets the stateful hybrid channel, each inverter an
// involution exp-channel. It demonstrates how MIS-induced glitches at
// the NOR output propagate — or die — down the chain.
//
// Run with:
//
//	go run ./examples/circuit
package main

import (
	"fmt"
	"log"

	"hybriddelay"
)

func main() {
	p := hybriddelay.TableI()

	// The circuit: NOR(a, b) -> three tied-input NOR2 instances acting
	// as inverters (NOR(x, x) = NOT x). The same description could be
	// flattened into a composed analog golden with NewCircuitBench or
	// scored per net with EvaluateCircuit.
	nl := &hybriddelay.Netlist{
		Name:   "nor-invchain",
		Inputs: []string{"a", "b"},
		Instances: []hybriddelay.NetlistInstance{
			{Name: "nor", Gate: "nor2", Inputs: []string{"a", "b"}, Output: "nor_out"},
			{Name: "inv1", Gate: "nor2", Inputs: []string{"nor_out", "nor_out"}, Output: "y1"},
			{Name: "inv2", Gate: "nor2", Inputs: []string{"y1", "y1"}, Output: "y2"},
			{Name: "inv3", Gate: "nor2", Inputs: []string{"y2", "y2"}, Output: "y3"},
		},
	}

	// The per-instance channel policy: the paper's hybrid NOR channel
	// (V_N worst case GND) at the front, involution exp-channels behind
	// the zero-time inverters.
	exp := hybriddelay.ExpChannel{TauUp: 30e-12, TauDown: 25e-12, DMin: 8e-12}
	wire := func(sim *hybriddelay.Simulator, inst hybriddelay.NetlistInstance,
		g hybriddelay.GateSpec, in []*hybriddelay.Net, out *hybriddelay.Net) error {
		if inst.Name == "nor" {
			_, err := hybriddelay.NewNORChannel(sim, p, in[0], in[1], out, 0)
			return err
		}
		raw := hybriddelay.NewNet(inst.Name+"_raw", false)
		if _, err := hybriddelay.NewGate(inst.Name, g.Logic, in, raw); err != nil {
			return err
		}
		hybriddelay.NewChannel(sim, inst.Name+"_ch", raw, out, exp, hybriddelay.PolicyInvolution)
		return nil
	}

	run := func(sepPs float64) (norEvents, outEvents int) {
		sim := hybriddelay.NewSimulator()
		// Both inputs start high: the NOR output starts low.
		nets, err := hybriddelay.ElaborateNetlist(nl, sim, map[string]bool{"a": true, "b": true}, wire)
		if err != nil {
			log.Fatal(err)
		}
		nets["nor_out"].Record()
		nets["y3"].Record()

		// Stimulus: both inputs drop (NOR output rises), then input A
		// rises again sepPs later — producing an output pulse of roughly
		// sepPs width at the NOR, which the chain may or may not carry.
		t0 := hybriddelay.Ps(500)
		if err := hybriddelay.Drive(sim, nets["a"], hybriddelay.NewTrace(true, t0, t0+hybriddelay.Ps(sepPs))); err != nil {
			log.Fatal(err)
		}
		if err := hybriddelay.Drive(sim, nets["b"], hybriddelay.NewTrace(true, t0)); err != nil {
			log.Fatal(err)
		}
		if err := sim.Run(10e-9); err != nil {
			log.Fatal(err)
		}
		return nets["nor_out"].Trace().NumEvents(), nets["y3"].Trace().NumEvents()
	}

	fmt.Println("pulse created at the NOR by re-raising input A after `sep`:")
	fmt.Printf("%10s %18s %18s\n", "sep [ps]", "NOR transitions", "chain-out transitions")
	for _, sep := range []float64{10, 20, 30, 40, 60, 80, 100, 140, 220, 400} {
		n, o := run(sep)
		fmt.Printf("%10.0f %18d %18d\n", sep, n, o)
	}
	fmt.Println("\nShort separations die at the NOR itself (its trajectory never")
	fmt.Println("recrosses V_th); marginal ones emerge but shrink through the")
	fmt.Println("involution chain and vanish; long ones propagate to the end.")
}
