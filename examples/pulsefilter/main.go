// pulsefilter explores short-pulse filtration — the behaviour that
// motivated the involution delay model in the first place (the paper's
// §I): sweep the width of an input pulse into a NOR gate and record the
// output pulse width predicted by each delay model.
//
// Inertial delay has a hard cutoff: pulses that fail the filter vanish,
// wider ones pass at full width. Involution exp-channels and the hybrid
// channel shrink marginal pulses continuously — the hybrid channel
// because a pulse only appears when the analog trajectory V_O actually
// crosses the threshold, and near the boundary it barely does.
//
// Run with:
//
//	go run ./examples/pulsefilter
package main

import (
	"fmt"
	"log"

	"hybriddelay"
)

func main() {
	p := hybriddelay.TableI()
	target, err := p.Characteristic()
	if err != nil {
		log.Fatal(err)
	}
	models, err := hybriddelay.BuildModels(target, p.Supply, hybriddelay.Ps(20))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("falling-output pulse: input A pulses high while B stays low")
	fmt.Println("output pulse width [ps] per model:")
	fmt.Printf("%10s %12s %12s %12s\n", "in [ps]", "hybrid", "inertial", "exp-channel")
	for _, wPs := range []float64{5, 10, 15, 20, 25, 30, 35, 40, 50, 70, 100, 150, 250} {
		w := hybriddelay.Ps(wPs)
		t0 := hybriddelay.Ps(500)
		a := hybriddelay.NewTrace(false, t0, t0+w)
		b := hybriddelay.NewTrace(false)

		hm, err := models.HM.Apply([]hybriddelay.Trace{a, b}, 5e-9)
		if err != nil {
			log.Fatal(err)
		}
		iner := models.Inertial.Apply(models.Gate.Logic, a, b)
		exp := hybriddelay.ApplyDelay(hybriddelay.NOR2Trace(a, b), models.Exp,
			hybriddelay.PolicyInvolution)

		fmt.Printf("%10.0f %12s %12s %12s\n", wPs, widthOf(hm), widthOf(iner), widthOf(exp))
	}

	fmt.Println("\nNote the hybrid and exp channels shrink marginal pulses smoothly;")
	fmt.Println("the inertial model jumps from 'filtered' to (nearly) full width —")
	fmt.Println("the discontinuity that makes classic models unfaithful for glitch")
	fmt.Println("propagation (paper §I and [Függer et al. 2020]).")
}

func widthOf(t hybriddelay.Trace) string {
	switch t.NumEvents() {
	case 0:
		return "filtered"
	case 2:
		return fmt.Sprintf("%.1f", hybriddelay.ToPs(t.Events[1].Time-t.Events[0].Time))
	default:
		return fmt.Sprintf("%d events", t.NumEvents())
	}
}
