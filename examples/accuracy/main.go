// accuracy runs the paper's §VI evaluation pipeline on one waveform
// configuration: random traces through the analog golden gate and
// through four digital delay models, scored by deviation area (Fig. 7).
//
// Run with:
//
//	go run ./examples/accuracy
package main

import (
	"fmt"
	"log"

	"hybriddelay"
)

func main() {
	bp := hybriddelay.DefaultBenchParams()
	bp.MaxStep = 8e-12
	bench, err := hybriddelay.NewBench(bp)
	if err != nil {
		log.Fatal(err)
	}
	target, err := hybriddelay.MeasureCharacteristic(bench)
	if err != nil {
		log.Fatal(err)
	}

	// Parametrize the full model set: per-arc inertial baseline, IDM
	// exp-channel (pure delay 20 ps as in the paper), hybrid model with
	// automatic pure delay, and the no-pure-delay ablation.
	models, err := hybriddelay.BuildModels(target, bp.Supply, hybriddelay.Ps(20))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid model: %s\n", models.HM)
	fmt.Printf("ablation    : %s\n\n", models.HMNoDMin)

	// The paper's first configuration: 100/50 - LOCAL (short pulses,
	// heavy MIS activity). Reduced size for a quick demo; crank
	// Transitions/seeds for paper-scale runs.
	cfg := hybriddelay.PaperConfigs()[0]
	cfg.Transitions = 200
	res, err := hybriddelay.Evaluate(bench, models, cfg, []int64{1, 2, 3, 4, 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("configuration %s, %d golden output transitions\n", cfg.Name(), res.GoldenEv)
	fmt.Println("normalized deviation area (inertial = 1, lower is better):")
	for _, name := range []string{"inertial", "exp-channel", "hm", "hm-no-dmin"} {
		fmt.Printf("  %-12s %6.3f\n", name, res.Normalized[name])
	}
	fmt.Println("\nexpected shape (paper Fig. 7): the hybrid model with pure delay")
	fmt.Println("clearly beats both the inertial baseline and the exp-channel for")
	fmt.Println("these short, MIS-heavy pulses.")
}
