// Quickstart: load the paper's Table I parametrization of the hybrid
// NOR delay model and query MIS (multiple-input-switching) delays.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hybriddelay"
)

func main() {
	// The paper's fitted parameters (Table I), including the 18 ps pure
	// delay that makes the characteristic delays fittable.
	p := hybriddelay.TableI()
	fmt.Println("model:", p)

	// Falling output (both inputs rise): the MIS speed-up. Delta is the
	// input separation tB - tA; the delay is measured from the earlier
	// input's threshold crossing.
	fmt.Println("\nfalling-output delay (speed-up near Delta = 0):")
	for _, dPs := range []float64{-200, -40, -10, 0, 10, 40, 200} {
		d, err := p.FallingDelay(hybriddelay.Ps(dPs))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  delta_fall(%+6.0f ps) = %6.2f ps\n", dPs, hybriddelay.ToPs(d))
	}

	// Rising output (both inputs fall): the delay is measured from the
	// later input and depends on the internal node's initial voltage.
	fmt.Println("\nrising-output delay (V_N history dependence):")
	for _, vn := range []hybriddelay.VNInitial{
		hybriddelay.VNGround, hybriddelay.VNHalf, hybriddelay.VNSupply,
	} {
		d, err := p.RisingDelay(0, vn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  delta_rise(0) with V_N = %-5s = %6.2f ps\n", vn, hybriddelay.ToPs(d))
	}

	// Closed-form characteristic Charlie delays (paper §V, eqs. 8-12).
	c, err := p.CharlieCharacteristic()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncharacteristic Charlie delays [ps]: fall %.2f / %.2f / %.2f, rise %.2f / %.2f / %.2f\n",
		hybriddelay.ToPs(c.FallMinusInf), hybriddelay.ToPs(c.FallZero), hybriddelay.ToPs(c.FallPlusInf),
		hybriddelay.ToPs(c.RiseMinusInf), hybriddelay.ToPs(c.RiseZero), hybriddelay.ToPs(c.RisePlusInf))
}
