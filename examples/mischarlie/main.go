// mischarlie sweeps the MIS ("Charlie effect") delays of the
// transistor-level golden NOR gate and of the fitted hybrid model side
// by side — the data behind the paper's Figs. 2, 5 and 6.
//
// Run with:
//
//	go run ./examples/mischarlie
package main

import (
	"fmt"
	"log"

	"hybriddelay"
)

func main() {
	// 1. Build the analog golden reference (the Spectre substitute) and
	//    measure its characteristic Charlie delays.
	bp := hybriddelay.DefaultBenchParams()
	bp.MaxStep = 8e-12 // coarser integration: plenty for a demo
	bench, err := hybriddelay.NewBench(bp)
	if err != nil {
		log.Fatal(err)
	}
	target, err := hybriddelay.MeasureCharacteristic(bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden characteristic delays [ps]: fall %.2f/%.2f/%.2f rise %.2f/%.2f/%.2f\n",
		hybriddelay.ToPs(target.FallMinusInf), hybriddelay.ToPs(target.FallZero), hybriddelay.ToPs(target.FallPlusInf),
		hybriddelay.ToPs(target.RiseMinusInf), hybriddelay.ToPs(target.RiseZero), hybriddelay.ToPs(target.RisePlusInf))

	// 2. Parametrize the hybrid model against them (paper §V): the pure
	//    delay is chosen automatically so the falling ratio becomes 2.
	model, report, err := hybriddelay.FitCharacteristic(target, bp.Supply, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted model: %s (cost %.2e)\n\n", model, report.Cost)

	// 3. Sweep the input separation and compare (Fig. 5 for falling,
	//    Fig. 6 for rising with the worst-case V_N = GND).
	fmt.Println("Delta [ps] | golden fall | model fall | golden rise | model rise")
	for _, dPs := range []float64{-60, -40, -20, -10, 0, 10, 20, 40, 60} {
		delta := hybriddelay.Ps(dPs)
		gf, err := bench.FallingDelay(delta)
		if err != nil {
			log.Fatal(err)
		}
		mf, err := model.FallingDelay(delta)
		if err != nil {
			log.Fatal(err)
		}
		gr, err := bench.RisingDelay(delta, 0)
		if err != nil {
			log.Fatal(err)
		}
		mr, err := model.RisingDelay(delta, hybriddelay.VNGround)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.0f | %11.2f | %10.2f | %11.2f | %10.2f\n",
			dPs, hybriddelay.ToPs(gf), hybriddelay.ToPs(mf), hybriddelay.ToPs(gr), hybriddelay.ToPs(mr))
	}
	fmt.Println("\nNote the model's rising delays are flat for Delta <= 0: mode (1,1)")
	fmt.Println("cannot change V_N, the model deficiency the paper reports in Fig. 6.")
}
