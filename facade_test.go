package hybriddelay

import (
	"math"
	"strings"
	"testing"
)

// TestFacadeTraces: trace construction and algebra through the facade.
func TestFacadeTraces(t *testing.T) {
	a := NewTrace(false, 10e-12, 30e-12)
	if a.NumEvents() != 2 || a.Initial {
		t.Fatalf("NewTrace wrong: %+v", a)
	}
	b := NewTrace(false, 20e-12)
	nor := NOR2Trace(a, b)
	if !nor.Initial {
		t.Error("NOR of low inputs must start high")
	}
	d := DeviationArea(a, b, 0, 100e-12)
	if d <= 0 {
		t.Error("distinct traces must have positive deviation")
	}
}

// TestFacadeApplyDelay: both channel policies through the facade.
func TestFacadeApplyDelay(t *testing.T) {
	exp := ExpChannel{TauUp: 20e-12, TauDown: 20e-12, DMin: 5e-12}
	in := NewTrace(false, 100e-12, 400e-12)
	outInv := ApplyDelay(in, exp, PolicyInvolution)
	if outInv.NumEvents() != 2 {
		t.Errorf("involution output %+v", outInv.Events)
	}
	outIne := ApplyDelay(in, exp, PolicyInertial)
	if outIne.NumEvents() != 2 {
		t.Errorf("inertial output %+v", outIne.Events)
	}
}

// TestFacadeNAND: the NAND duality through the facade.
func TestFacadeNAND(t *testing.T) {
	n := NANDFromDual(TableI())
	a := NewTrace(false, 500e-12)
	b := NewTrace(false, 500e-12)
	out, err := ApplyNAND(n, a, b, 3e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Initial || out.NumEvents() != 1 {
		t.Fatalf("NAND output %+v", out.Events)
	}
}

// TestFacadeNOR3: the 3-input extension through the facade.
func TestFacadeNOR3(t *testing.T) {
	p3 := NOR3FromNOR2(TableI())
	if err := p3.Validate(); err != nil {
		t.Fatal(err)
	}
	all, err := p3.FallingDelay3(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sis, err := p3.FallingDelay3(200e-12, 400e-12)
	if err != nil {
		t.Fatal(err)
	}
	if all >= sis {
		t.Errorf("3-input MIS speed-up missing: %g vs %g", all, sis)
	}
	var g SwitchGate = p3.Gate()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeCircuit: the circuit-composition API end to end — a hybrid
// NOR channel into an inverter chain.
func TestFacadeCircuit(t *testing.T) {
	p := TableI()
	sim := NewSimulator()
	a := NewNet("a", false)
	b := NewNet("b", false)
	norOut := NewNet("nor", false)
	norOut.Record()
	if _, err := NewNORChannel(sim, p, a, b, norOut, p.Supply.VDD); err != nil {
		t.Fatal(err)
	}
	if !norOut.Value() {
		t.Fatal("NOR of (0,0) must start high")
	}
	exp := ExpChannel{TauUp: 20e-12, TauDown: 20e-12, DMin: 5e-12}
	out, err := InverterChain(sim, norOut, 2, func(i int, from, to *Net) {
		NewChannel(sim, "c", from, to, exp, PolicyInvolution)
	})
	if err != nil {
		t.Fatal(err)
	}
	out.Record()
	if err := Drive(sim, a, NewTrace(false, 500e-12)); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(5e-9); err != nil {
		t.Fatal(err)
	}
	norTr := norOut.Trace()
	outTr := out.Trace()
	if norTr.NumEvents() != 1 || norTr.Events[0].Value {
		t.Fatalf("NOR trace %+v", norTr.Events)
	}
	if outTr.NumEvents() != 1 {
		t.Fatalf("chain trace %+v", outTr.Events)
	}
	// Two inverters preserve polarity; total delay = NOR fall +
	// 2 * exp-channel delta(inf).
	wantFall, err := p.FallingDelay(200e-12)
	if err != nil {
		t.Fatal(err)
	}
	_ = wantFall // SIS fall for A-only transition:
	fall, err := p.FallingDelay(SISFarFacadeProbe)
	if err != nil {
		t.Fatal(err)
	}
	want := 500e-12 + fall + 2*(exp.DMin+exp.TauUp*math.Ln2)
	// The chain alternates rise/fall; the second stage delay uses
	// TauDown... compute loosely: within a few ps.
	if math.Abs(outTr.Events[0].Time-want) > 5e-12 {
		t.Errorf("chain output at %g, want ~%g", outTr.Events[0].Time, want)
	}
}

// SISFarFacadeProbe mirrors hybrid.SISFar for facade-level tests.
const SISFarFacadeProbe = 200e-12

// TestFacadeGateFns: gate function re-exports.
func TestFacadeGateFns(t *testing.T) {
	if FnInv([]bool{true}) || !FnBuf([]bool{true}) {
		t.Error("inverter/buffer wrong")
	}
	if FnNOR2([]bool{true, false}) || !FnNAND2([]bool{true, false}) {
		t.Error("nor/nand wrong")
	}
	if !FnAND2([]bool{true, true}) || !FnOR2([]bool{false, true}) || FnXOR2([]bool{true, true}) {
		t.Error("and/or/xor wrong")
	}
	g, err := NewGate("inv", FnInv, []*Net{NewNet("x", false)}, NewNet("y", false))
	if err != nil || g == nil {
		t.Fatal(err)
	}
}

// TestFacadeEvaluateSmall: the full public evaluation path at tiny size.
func TestFacadeEvaluateSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	bp := DefaultBenchParams()
	bp.MaxStep = 8e-12
	bench, err := NewBench(bp)
	if err != nil {
		t.Fatal(err)
	}
	target, err := MeasureCharacteristic(bench)
	if err != nil {
		t.Fatal(err)
	}
	models, err := BuildModels(target, bp.Supply, Ps(20))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperConfigs()[0]
	cfg.Transitions = 30
	res, err := Evaluate(bench, models, cfg, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Normalized["inertial"] != 1 {
		t.Error("normalization broken")
	}
}

// TestFacadeEvaluateParallel: the concurrent engine through the facade —
// a pooled parallel run with a shared golden cache must reproduce the
// serial result exactly.
func TestFacadeEvaluateParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	bp := DefaultBenchParams()
	bp.MaxStep = 8e-12
	bench, err := NewBench(bp)
	if err != nil {
		t.Fatal(err)
	}
	target, err := MeasureCharacteristic(bench)
	if err != nil {
		t.Fatal(err)
	}
	models, err := BuildModels(target, bp.Supply, Ps(20))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperConfigs()[0]
	cfg.Transitions = 30
	seeds := []int64{1, 2}
	serial, err := Evaluate(bench, models, cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	var units int
	opt := &EvalOptions{
		Workers:  2,
		Cache:    NewGoldenCache(),
		Progress: func(p EvalProgress) { units = p.Completed },
	}
	par, err := EvaluateParallel(bench, models, cfg, seeds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if units != len(seeds) {
		t.Errorf("progress saw %d units, want %d", units, len(seeds))
	}
	for name, a := range serial.Area {
		if par.Area[name] != a {
			t.Errorf("Area[%s]: parallel %g != serial %g", name, par.Area[name], a)
		}
	}
	if st := opt.Cache.Stats(); st.Misses != int64(len(seeds)) || st.Entries != len(seeds) {
		t.Errorf("cache stats %+v, want %d misses/entries", st, len(seeds))
	}
}

// TestFacadeSweep: the scenario-sweep engine through the facade — a
// small grid expands in order, runs on the shared pool and encodes.
func TestFacadeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep in -short mode")
	}
	bp := DefaultBenchParams()
	bp.MaxStep = 8e-12
	spec := SweepSpec{
		Gates:    []string{"nor2", "nand2"},
		VDDScale: []float64{1, 0.95},
		Stimuli: []SweepStimulus{
			{Mode: StimulusLocal, Mu: Ps(200), Sigma: Ps(100), Transitions: 10},
			{Mode: StimulusGlobal, Mu: Ps(200), Sigma: Ps(100), Transitions: 10},
		},
		Seeds: []int64{1},
		Bench: &bp,
	}
	scenarios, err := ExpandSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 8 {
		t.Fatalf("expanded %d scenarios, want 8", len(scenarios))
	}
	var steps int
	rep, err := RunSweep(spec, &SweepOptions{
		Workers:  2,
		Cache:    NewGoldenCache(),
		Progress: func(p SweepProgress) { steps++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 8 || rep.TotalUnits != 8 {
		t.Fatalf("report: %d scenarios, %d units", len(rep.Scenarios), rep.TotalUnits)
	}
	if steps == 0 {
		t.Error("no progress callbacks delivered")
	}
	for i, sc := range rep.Scenarios {
		if sc.Index != i {
			t.Errorf("scenario %d reported index %d", i, sc.Index)
		}
		if v, ok := sc.Normalized["inertial"]; !ok || float64(v) != 1 {
			t.Errorf("scenario %d: inertial normalization %v", i, v)
		}
	}
}

// TestFacadeNetlist: the circuit-level pipeline through the facade —
// parse a netlist, build its models, evaluate, and check the per-net
// report shape.
func TestFacadeNetlist(t *testing.T) {
	if testing.Short() {
		t.Skip("composed analog transients in -short mode")
	}
	nl, err := ParseNetlist(strings.NewReader(`{
	  "name": "mini",
	  "inputs": ["a", "b"],
	  "instances": [
	    {"name": "nor",  "gate": "nor2", "inputs": ["a", "b"],   "output": "y0"},
	    {"name": "inv1", "gate": "nor2", "inputs": ["y0", "y0"], "output": "y1"}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultBenchParams()
	p.MaxStep = 8e-12
	ms, err := BuildNetlistModels(nl, p, Ps(20))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperConfigs()[0]
	cfg.Transitions = 8
	res, err := EvaluateCircuit(nl, p, ms, cfg, []int64{1}, &EvalOptions{Workers: 2, Cache: NewGoldenCache()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nets) != 2 {
		t.Fatalf("recorded nets = %v, want [y0 y1]", res.Nets)
	}
	for _, model := range ModelNames() {
		if _, ok := res.TotalNormalized[model]; !ok {
			t.Errorf("missing total for model %s", model)
		}
	}
	if _, err := BuiltinNetlist("c17"); err != nil {
		t.Error(err)
	}
	if len(BuiltinNetlists()) < 2 {
		t.Errorf("builtin circuits = %v", BuiltinNetlists())
	}
}

// TestFacadeParseSweepSpec: the grid-file decoder through the facade.
func TestFacadeParseSweepSpec(t *testing.T) {
	spec, err := ParseSweepSpec(strings.NewReader(
		`{"gates": ["nor3"], "stimuli": [{"mode": "LOCAL", "mu": 1e-10, "sigma": 5e-11, "transitions": 6}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Gates) != 1 || spec.Gates[0] != "nor3" {
		t.Errorf("parsed %+v", spec)
	}
}
