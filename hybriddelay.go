// Package hybriddelay is a Go implementation of the hybrid delay model
// for multi-input gates from
//
//	A. Ferdowsi, J. Maier, D. Öhlinger, U. Schmid:
//	"A Simple Hybrid Model for Accurate Delay Modeling of a
//	Multi-Input Gate", DATE 2022 (arXiv:2111.11182),
//
// together with every substrate the paper's evaluation depends on: a
// transistor-level analog circuit simulator standing in for the SPICE
// golden reference, an event-driven digital timing simulator standing in
// for the Involution Tool, involution (IDM) and inertial delay channels,
// random trace generation, and the least-squares parametrization
// machinery.
//
// # The model in one paragraph
//
// A 2-input CMOS NOR gate is abstracted into a hybrid automaton with one
// mode per input state (A, B) ∈ {0,1}²: transistors become ideal
// switches (on-resistance R or open), so each mode is a 2-dimensional
// linear RC system in the internal node voltage V_N and the output
// voltage V_O. Mode switches occur — deferred by a pure delay δ_min — at
// input threshold crossings, with the state carried continuously. The
// gate delay is the time at which V_O crosses V_th = VDD/2. Because the
// channel sees both inputs, it reproduces multiple-input-switching (MIS,
// "Charlie") effects that single-input delay channels cannot.
//
// # Package layout
//
// This root package is a facade re-exporting the stable public surface.
// The implementation lives in internal packages:
//
//	internal/hybrid  - the four-mode model, delays, Charlie formulas,
//	                   parametrization, the 2-input digital channel and
//	                   the generalized switch-level SwitchGate channel
//	internal/spice   - MNA transient analog simulator (golden reference)
//	internal/nor     - transistor-level NOR/NAND/NOR3 testbenches
//	                   (paper Fig. 1 and its structural variants)
//	internal/gate    - the gate registry: bench construction, Charlie
//	                   measurement and model parametrization behind one
//	                   Gate interface (nor2 default, nand2, nor3), so
//	                   the pipeline is gate-generic
//	internal/dtsim   - event-driven digital timing simulator
//	internal/idm     - involution (exp / sum-exp) channels
//	internal/inertial- pure/inertial and arity-generic per-pin arc
//	                   baselines
//	internal/gen     - §VI random waveform configurations
//	internal/eval    - Fig. 7 deviation-area accuracy pipeline, keyed by
//	                   registered gate, with the golden-trace and
//	                   parametrization caches
//	internal/sweep   - scenario sweep engine: declarative grids of
//	                   operating points (gate × VDD scale × load scale ×
//	                   stimulus × seeds) evaluated on one shared worker
//	                   pool and golden-trace cache, reported as JSON/CSV
//	internal/session - the unified Session engine: one long-lived owner
//	                   of the worker pool and both caches, evaluating
//	                   gate, circuit and sweep jobs through a single
//	                   Job/Result surface with context cancellation
//	internal/serve   - the HTTP+JSON job service around one Session:
//	                   job registry, SSE progress streams, per-client
//	                   admission control and the loadgen harness
//	internal/store   - persistent content-addressed golden-trace store
//	internal/fit     - Nelder-Mead / Brent / Levenberg-Marquardt
//	internal/la, ode, roots, waveform, trace - math & signal substrates
//
// The cmd/hybridlab CLI exposes the registry through its -gate flag
// (and -list-gates): `hybridlab fig7 -gate nand2` runs the accuracy
// pipeline end-to-end against any registered gate, with nor2 remaining
// the default.
//
// # Quick start
//
//	p := hybriddelay.TableI()              // the paper's parameters
//	d, _ := p.FallingDelay(0)              // MIS delay at Delta = 0
//	fmt.Println(d)                         // ~28 ps
//
// See examples/ for runnable programs and EXPERIMENTS.md for the full
// paper-vs-measured record.
package hybriddelay

import (
	"context"
	"io"
	"sync"

	"hybriddelay/internal/dtsim"
	"hybriddelay/internal/eval"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/idm"
	"hybriddelay/internal/inertial"
	"hybriddelay/internal/la/sparse"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/serve"
	"hybriddelay/internal/session"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/store"
	"hybriddelay/internal/sweep"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// ModelParams are the hybrid model's parameters: switch-level
// resistances R1..R4, capacitances C_N and C_O, the supply, and the pure
// delay DMin (paper Table I).
type ModelParams = hybrid.Params

// Characteristic bundles the six characteristic Charlie delays
// delta_fall(-inf, 0, +inf) and delta_rise(-inf, 0, +inf) (paper §V).
type Characteristic = hybrid.Characteristic

// FitOptions configures FitCharacteristic.
type FitOptions = hybrid.FitOptions

// FitReport describes a parametrization outcome.
type FitReport = hybrid.FitReport

// Mode is one of the four input states of the NOR gate.
type Mode = hybrid.Mode

// The four hybrid modes.
const (
	Mode00 = hybrid.Mode00
	Mode01 = hybrid.Mode01
	Mode10 = hybrid.Mode10
	Mode11 = hybrid.Mode11
)

// VNInitial selects the internal-node initial value for rising-output
// delay queries (paper Fig. 6).
type VNInitial = hybrid.VNInitial

// The three studied V_N initial values.
const (
	VNGround = hybrid.VNGround
	VNHalf   = hybrid.VNHalf
	VNSupply = hybrid.VNSupply
)

// Supply is the voltage environment (VDD and the logic threshold).
type Supply = waveform.Supply

// Trace is a digital signal trace (initial value plus transitions).
type Trace = trace.Trace

// BenchParams configures the transistor-level NOR golden reference.
type BenchParams = nor.Params

// Bench is the instantiated transistor-level NOR testbench.
type Bench = nor.Bench

// Models bundles the delay models compared in the Fig. 7 evaluation.
type Models = eval.Models

// TraceConfig describes one random waveform configuration (§VI).
type TraceConfig = gen.Config

// ExpChannel is the IDM exponential involution channel.
type ExpChannel = idm.Exp

// NORArcs is the per-arc inertial NOR baseline.
type NORArcs = inertial.NORArcs

// InertialArcs is the arity-generic per-pin inertial baseline used by
// the gate-generic pipeline (NORArcs is its 2-input named form).
type InertialArcs = inertial.Arcs

// TableI returns the paper's fitted parameter values (Table I) with
// delta_min = 18 ps.
func TableI() ModelParams { return hybrid.TableI() }

// DefaultSupply returns the paper's 15nm environment: VDD = 0.8 V,
// V_th = 0.4 V.
func DefaultSupply() Supply { return waveform.DefaultSupply() }

// DefaultBenchParams returns the calibrated golden-reference testbench.
func DefaultBenchParams() BenchParams { return nor.DefaultParams() }

// NewBench instantiates the transistor-level NOR testbench.
func NewBench(p BenchParams) (*Bench, error) { return nor.New(p) }

// FitCharacteristic calibrates model parameters against measured
// characteristic Charlie delays (paper §V).
func FitCharacteristic(target Characteristic, supply Supply, opt *FitOptions) (ModelParams, FitReport, error) {
	return hybrid.FitCharacteristic(target, supply, opt)
}

// AutoDMin returns the pure delay that makes the falling targets
// fittable (paper §IV): 2*delta_fall(0) - delta_fall(-inf).
func AutoDMin(target Characteristic) float64 { return hybrid.AutoDMin(target) }

// BuildModels parametrizes the Fig. 7 model set (inertial, exp-channel,
// hybrid with and without pure delay) from measured characteristic
// delays.
func BuildModels(target Characteristic, supply Supply, expDMin float64) (Models, error) {
	return eval.BuildModels(target, supply, expDMin)
}

// MeasureCharacteristic measures the six characteristic Charlie delays
// of a golden-reference bench.
func MeasureCharacteristic(bench *Bench) (Characteristic, error) {
	return eval.MeasureCharacteristic(bench)
}

// Evaluate runs the Fig. 7 accuracy pipeline for one waveform
// configuration over the given seeds, walking the seeds on a single
// worker (the serial schedule). EvaluateParallel produces bit-identical
// results on a worker pool; like it, Evaluate delegates to the default
// Session.
func Evaluate(bench *Bench, m Models, cfg TraceConfig, seeds []int64) (eval.RunResult, error) {
	return EvaluateGate(&gate.NOR2Bench{B: bench}, m, cfg, seeds)
}

// RunResult aggregates the deviation areas of one evaluation run.
type RunResult = eval.RunResult

// SeedResult is the outcome of one (config, seed) evaluation unit.
type SeedResult = eval.SeedResult

// EvalOptions configures the parallel evaluation engine: worker count,
// an optional shared golden-trace cache, and a progress callback.
type EvalOptions = eval.Options

// EvalProgress describes one completed evaluation unit.
type EvalProgress = eval.Progress

// GoldenCache memoizes digitized golden traces keyed by (bench
// parameters, configuration, seed); share one across evaluation runs to
// skip re-simulating identical golden transients.
type GoldenCache = eval.GoldenCache

// NewGoldenCache returns an empty golden-trace cache.
func NewGoldenCache() *GoldenCache { return eval.NewGoldenCache() }

// EvalRunner fans evaluation units across a bounded worker pool with
// per-worker bench clones and deterministic merging.
type EvalRunner = eval.Runner

// NewEvalRunner builds a runner for the given golden bench and model
// set; opt may be nil for defaults.
func NewEvalRunner(bench *Bench, m Models, opt *EvalOptions) *EvalRunner {
	return eval.NewRunner(bench, m, opt)
}

// Session API: one long-lived, concurrency-safe engine owning the
// bounded worker pool, the golden-trace cache and the parametrization
// cache (which memoizes the bench-measure-fit chain per operating
// point). All workloads — single-gate accuracy runs, circuit-level
// runs, scenario sweeps — are values submitted through one door,
// Session.Evaluate(ctx, job), returning a uniform Result and reporting
// through a single Progress stream, with context cancellation plumbed
// down to the unit workers. The legacy entry points (Evaluate,
// EvaluateParallel, EvaluateGate, EvaluateCircuit, RunSweep) remain
// supported as thin wrappers over a process-wide default Session with
// bit-identical results.

// Session is the unified evaluation engine; see NewSession.
type Session = session.Session

// SessionOptions configures a new Session: the shared worker budget
// and optional pre-existing caches.
type SessionOptions = session.Options

// NewSession builds a long-lived evaluation engine. The zero options
// value selects GOMAXPROCS workers and fresh private caches.
func NewSession(opt SessionOptions) *Session { return session.New(opt) }

// GoldenStore is the persistent, content-addressed on-disk golden
// store: the tier below the in-memory GoldenCache. Mount one into a
// Session via SessionOptions.Store; in-memory misses then read through
// to disk and freshly computed goldens are written behind without
// blocking evaluation. Close (or Flush) before process exit to drain
// pending writes.
type GoldenStore = store.Store

// GoldenStoreStats counts a store's disk traffic.
type GoldenStoreStats = store.Stats

// OpenGoldenStore opens (creating if missing) a persistent golden
// store rooted at dir. The directory carries a format-version stamp;
// opening a directory written by an incompatible version fails rather
// than serving stale bytes.
func OpenGoldenStore(dir string) (*GoldenStore, error) { return store.Open(dir) }

// Job is a workload value accepted by Session.Evaluate: a GateJob,
// CircuitJob or SweepJob.
type Job = session.Job

// GateJob evaluates the Fig. 7 pipeline for one gate at one operating
// point over one or more waveform configurations.
type GateJob = session.GateJob

// CircuitJob evaluates the circuit-level pipeline for one netlist.
type CircuitJob = session.CircuitJob

// SweepJob evaluates a declarative scenario grid.
type SweepJob = session.SweepJob

// JobKind names a job (and result) flavour.
type JobKind = session.Kind

// The three workload flavours a Session evaluates.
const (
	JobGate    = session.KindGate
	JobCircuit = session.KindCircuit
	JobSweep   = session.KindSweep
)

// Result is the uniform outcome of Session.Evaluate: the submitted
// flavour's rows plus shared cache and timing statistics.
type Result = session.Result

// SessionStats is the cache and timing picture attached to every
// Result.
type SessionStats = session.Stats

// Progress is the session's single progress stream: one event per
// completed preparation step or evaluation unit of any job flavour.
type Progress = session.Progress

// CacheStats reports golden-trace cache effectiveness counters
// (hits, misses, completed entries, evictions).
type CacheStats = eval.CacheStats

// SolverMode selects the linear-solver strategy of the analog
// transients behind an evaluation: SolverDenseExact is the
// bit-identical golden reference, SolverSparseFast the opt-in
// structurally sparse kernel (numerically equivalent — delays agree to
// well under a picosecond — but not bit-identical). Set it per
// operating point via BenchParams.Solver or session-wide via
// SessionOptions.Solver; the mode is part of every cache and store
// key, so the two paths never alias.
type SolverMode = spice.SolverMode

// The two linear-solver strategies.
const (
	SolverDenseExact = spice.DenseExact
	SolverSparseFast = spice.SparseFast
)

// ParseSolverMode parses a solver-mode flag value ("dense-exact" /
// "dense", "sparse-fast" / "sparse").
func ParseSolverMode(s string) (SolverMode, error) { return spice.ParseSolverMode(s) }

// SolverStats counts the MNA solver work behind an evaluation — steps,
// Newton iterations, factorizations, and the sparse path's savings
// (including symbolic-cache hits/misses and adopted supernodes).
// Every session Result carries one in Stats.Solver.
type SolverStats = spice.SolverStats

// SymbolicCacheStats reports the process-wide symbolic-factorization
// cache's counters: Misses counts Markowitz pilot analyses actually
// run, Hits counts solvers that adopted a shared analysis instead.
// The session snapshot (and the serve /metrics payload) carries one.
type SymbolicCacheStats = sparse.CacheStats

// SharedSymbolicCacheStats snapshots the process-wide symbolic cache
// every SparseFast solver resolves its analyses through.
func SharedSymbolicCacheStats() SymbolicCacheStats { return spice.SharedSymbolicCache().Stats() }

// ParamCache memoizes prepared operating points — the Gate.NewBench →
// Measure → BuildModels chain — per (gate, bench parameters, expDMin)
// content key with singleflight deduplication. Share one across
// sessions to never re-fit a model set for a known operating point.
type ParamCache = eval.ParamCache

// NewParamCache returns an empty parametrization cache.
func NewParamCache() *ParamCache { return eval.NewParamCache() }

// ParamCacheStats reports parametrization-cache effectiveness counters.
type ParamCacheStats = eval.ParamStats

// DefaultSessionExpDMin is the exp channel's empirical pure delay a
// session job applies when not overridden (paper: 20 ps).
const DefaultSessionExpDMin = session.DefaultExpDMin

// SessionSnapshot is a point-in-time view of a session's shared
// resources (caches, aggregate solver traffic, worker budget) —
// the /metrics payload's session section.
type SessionSnapshot = session.Snapshot

// Serving API: `hybridlab serve` exposes one Session as a long-lived
// multi-tenant HTTP+JSON job service — POST /v1/jobs accepts a
// JobSpec, GET /v1/jobs/{id} reports status and result, GET
// /v1/jobs/{id}/events streams progress over SSE, DELETE cancels, and
// GET /metrics exposes the cache/solver/store/admission counters. An
// admission gate bounds concurrently running jobs globally and per
// client with a bounded FIFO backlog (overflow answers 429), and
// Shutdown drains in-flight jobs and flushes the golden store.

// JobServer is the HTTP service around one shared Session.
type JobServer = serve.Server

// JobServerOptions configures NewJobServer: the session (required),
// an optionally mounted golden store, and the admission bounds.
type JobServerOptions = serve.Options

// NewJobServer builds the HTTP job service; mount it on any
// http.Server (it implements http.Handler).
func NewJobServer(opt JobServerOptions) (*JobServer, error) { return serve.NewServer(opt) }

// JobSpec is the wire form of a job submission: a gate, circuit or
// sweep workload by value, with no bench parameters — the server pins
// the operating point, so tenants share its caches.
type JobSpec = serve.JobSpec

// JobState is a served job's lifecycle state.
type JobState = serve.State

// The served job lifecycle.
const (
	JobQueued    = serve.StateQueued
	JobRunning   = serve.StateRunning
	JobDone      = serve.StateDone
	JobFailed    = serve.StateFailed
	JobCancelled = serve.StateCancelled
)

// JobStatus is the GET /v1/jobs/{id} payload.
type JobStatus = serve.JobStatus

// JobEvent is one entry of a served job's progress event log (the SSE
// stream's data frames).
type JobEvent = serve.Event

// ServerMetrics is the GET /metrics payload.
type ServerMetrics = serve.Metrics

// AdmissionStats counts the admission gate's decisions.
type AdmissionStats = serve.AdmissionStats

// LoadOptions configures RunServeLoad's concurrent mixed-client load.
type LoadOptions = serve.LoadOptions

// LoadReport is the BENCH_serve.json payload: latency percentiles,
// throughput and the byte-identity verdict against a one-shot
// reference session.
type LoadReport = serve.LoadReport

// RunServeLoad drives concurrent mixed clients against a running job
// server and assembles the latency/throughput report (`hybridlab
// loadgen`).
func RunServeLoad(ctx context.Context, baseURL string, opt LoadOptions) (*LoadReport, error) {
	return serve.RunLoad(ctx, baseURL, opt)
}

// CanonicalServeResultJSON projects a Result onto its deterministic
// content — stripping timings and cache counters — so server results
// can be compared byte-for-byte against one-shot runs.
func CanonicalServeResultJSON(res *Result) ([]byte, error) { return serve.CanonicalResultJSON(res) }

// defaultSession backs the legacy entry points: one process-wide
// engine. Its parametrization cache gives repeated legacy sweeps
// cross-call reuse of measured operating points; golden-trace
// memoization keeps the historical contract (only with an explicit
// caller-supplied cache), so long-lived legacy callers see no new
// memory growth.
var (
	defaultSessionOnce sync.Once
	defaultSessionVal  *Session
)

// DefaultSession returns the process-wide Session the legacy entry
// points delegate to. It is created on first use with default options.
func DefaultSession() *Session {
	defaultSessionOnce.Do(func() { defaultSessionVal = session.New(session.Options{}) })
	return defaultSessionVal
}

// evalOverrides maps the legacy EvalOptions onto per-job overrides,
// translating the session progress stream back onto the legacy
// callback type. The historical entry points only memoize golden
// traces when the caller supplies a cache, so noCache is set whenever
// opt.Cache is nil — delegating to the Session must not change the
// wrappers' memory behaviour.
func evalOverrides(opt *EvalOptions) (workers int, cache *GoldenCache, noCache bool, progress func(Progress)) {
	if opt == nil {
		return 0, nil, true, nil
	}
	workers, cache = opt.Workers, opt.Cache
	noCache = cache == nil
	if opt.Progress != nil {
		fn := opt.Progress
		progress = func(p Progress) {
			fn(eval.Progress{Config: p.Config, Seed: p.Seed, Completed: p.Completed, Total: p.Total, Err: p.Err})
		}
	}
	return
}

// EvaluateParallel runs the Fig. 7 accuracy pipeline for one waveform
// configuration over the given seeds on a bounded worker pool. For a
// fixed seed list the result is bit-identical to Evaluate regardless of
// the worker count. It delegates to the default Session; golden traces
// are memoized only in an explicitly supplied opt.Cache (the
// historical contract), while Session jobs get the shared caches.
func EvaluateParallel(bench *Bench, m Models, cfg TraceConfig, seeds []int64, opt *EvalOptions) (eval.RunResult, error) {
	workers, cache, noCache, progress := evalOverrides(opt)
	res, err := DefaultSession().Evaluate(context.Background(), GateJob{
		Bench: &gate.NOR2Bench{B: bench}, Models: &m,
		Configs: []TraceConfig{cfg}, Seeds: seeds,
		Workers: workers, Cache: cache, NoCache: noCache, Progress: progress,
	})
	if err != nil {
		return eval.RunResult{Config: cfg, Area: map[string]float64{}, Normalized: map[string]float64{}}, err
	}
	return res.Gate[0], nil
}

// Gate-registry API: the evaluation pipeline is generic over registered
// multi-input gates — NOR2 (the paper's gate and the default), its
// structural dual NAND2 and the 3-input NOR3 extension.

// GateSpec describes one registered gate: arity, boolean function,
// golden-bench construction, characteristic measurement and model
// parametrization hooks.
type GateSpec = gate.Gate

// GateBench is an instantiated transistor-level golden bench of a
// registered gate.
type GateBench = gate.Bench

// GateMeasurement bundles a bench's characteristic Charlie delays and
// per-pin SIS arcs — the input of GateSpec.BuildModels.
type GateMeasurement = gate.Measurement

// GateModel is one parametrized delay model applied to input traces.
type GateModel = gate.Model

// Gates lists the registered gate names in sorted order.
func Gates() []string { return gate.Names() }

// LookupGate returns the registered gate of the given name.
func LookupGate(name string) (GateSpec, bool) { return gate.Lookup(name) }

// DefaultGate returns the paper's gate, the 2-input NOR.
func DefaultGate() GateSpec { return gate.Default() }

// EvaluateGate runs the Fig. 7 pipeline on any gate bench, walking the
// seeds on a single worker (the serial schedule). It delegates to the
// default Session; results are bit-identical to the historical serial
// evaluation.
func EvaluateGate(bench GateBench, m Models, cfg TraceConfig, seeds []int64) (eval.RunResult, error) {
	res, err := DefaultSession().Evaluate(context.Background(), GateJob{
		Bench: bench, Models: &m,
		Configs: []TraceConfig{cfg}, Seeds: seeds,
		Workers: 1, NoCache: true, // the historical serial path never cached
	})
	if err != nil {
		return eval.MergeSeedResults(cfg, nil), err
	}
	return res.Gate[0], nil
}

// NewGateEvalRunner builds a parallel evaluation runner for any gate
// bench; opt may be nil for defaults.
func NewGateEvalRunner(bench GateBench, m Models, opt *EvalOptions) *EvalRunner {
	return eval.NewGateRunner(bench, m, opt)
}

// Netlist API: declarative multi-gate circuits over registered gates,
// elaborated down both sides of the accuracy pipeline — flattened into
// one composed transistor-level golden circuit on the analog side, and
// into either the event-driven simulator (with a pluggable per-gate
// channel policy) or the offline per-gate delay models on the digital
// side, with per-net accuracy scoring.

// Netlist is a multi-gate circuit description: instances of registered
// gates wired by named nets, validated for arity, single drivers and
// acyclicity.
type Netlist = netlist.Netlist

// NetlistInstance is one gate instantiation inside a Netlist.
type NetlistInstance = netlist.Instance

// NetlistModels maps gate registry names to their parametrized model
// sets — one entry per distinct gate a netlist uses.
type NetlistModels = netlist.ModelSet

// CircuitBench is a netlist flattened into one composed transistor-
// level MNA circuit — the analog golden reference of circuit-level
// evaluation, producing a digitized trace per recorded net.
type CircuitBench = netlist.Bench

// CircuitResult aggregates a circuit evaluation: per-net and total
// deviation areas with inertial-normalized ratios.
type CircuitResult = eval.CircuitResult

// CircuitSeedResult is the outcome of one circuit (config, seed) unit.
type CircuitSeedResult = eval.CircuitSeedResult

// NetlistChannelBuilder realizes one instance's delay behaviour when a
// netlist is elaborated into the event-driven simulator.
type NetlistChannelBuilder = netlist.ChannelBuilder

// Model names of the Fig. 7 legend, as used in result maps and by
// WireNetlistModel.
const (
	ModelInertial = gate.ModelInertial
	ModelExp      = gate.ModelExp
	ModelHM       = gate.ModelHM
	ModelHMNoDMin = gate.ModelHMNoDMin
)

// ModelNames lists the evaluated delay models in presentation order.
func ModelNames() []string { return append([]string(nil), gate.ModelNames...) }

// ParseNetlist decodes and validates the JSON netlist format of
// `hybridlab circuit -netlist`.
func ParseNetlist(r io.Reader) (*Netlist, error) { return netlist.Parse(r) }

// BuiltinNetlist returns a shipped example circuit ("nor-invchain",
// "c17") by name.
func BuiltinNetlist(name string) (*Netlist, error) { return netlist.Builtin(name) }

// BuiltinNetlists lists the shipped example circuits.
func BuiltinNetlists() []string { return netlist.BuiltinNames() }

// NewCircuitBench flattens a netlist into a composed analog bench.
func NewCircuitBench(nl *Netlist, p BenchParams) (*CircuitBench, error) {
	return netlist.NewBench(nl, p)
}

// BuildNetlistModels measures and parametrizes every distinct gate a
// netlist uses at the given operating point (expDMin is the exp
// channel's empirical pure delay, paper: 20 ps).
func BuildNetlistModels(nl *Netlist, p BenchParams, expDMin float64) (NetlistModels, error) {
	return netlist.BuildModelSet(nl, p, expDMin)
}

// EvaluateCircuit runs the circuit-level accuracy pipeline for one
// waveform configuration over the given seeds on a bounded worker
// pool: composed golden traces per recorded net (memoized under the
// netlist content key), every delay model elaborated over the netlist,
// per-net deviation-area scoring. The result is bit-identical
// regardless of the worker count, and a single-gate netlist reproduces
// EvaluateGate exactly. It delegates to the default Session; composed
// golden traces are memoized only in an explicitly supplied opt.Cache
// (the historical contract).
func EvaluateCircuit(nl *Netlist, p BenchParams, ms NetlistModels, cfg TraceConfig, seeds []int64, opt *EvalOptions) (CircuitResult, error) {
	workers, cache, noCache, progress := evalOverrides(opt)
	res, err := DefaultSession().Evaluate(context.Background(), CircuitJob{
		Netlist: nl, Params: &p, Models: ms,
		Config: cfg, Seeds: seeds,
		Workers: workers, Cache: cache, NoCache: noCache, Progress: progress,
	})
	if err != nil {
		return eval.MergeCircuitSeedResults(nl, cfg, nil), err
	}
	return *res.Circuit, nil
}

// ElaborateNetlist builds a netlist into the event-driven simulator:
// one net per named net (primary inputs initialized from initial) and
// one wire call per instance in topological order.
func ElaborateNetlist(nl *Netlist, sim *Simulator, initial map[string]bool, wire NetlistChannelBuilder) (map[string]*Net, error) {
	return netlist.Elaborate(nl, sim, initial, wire)
}

// WireNetlistModel returns the standard per-gate channel policy
// realizing one named delay model (ModelInertial, ModelExp, ModelHM,
// ModelHMNoDMin) from a model set.
func WireNetlistModel(ms NetlistModels, model string) NetlistChannelBuilder {
	return netlist.WireModel(ms, model)
}

// Scenario-sweep API: fan whole grids of operating points (gate ×
// supply scaling × output load × stimulus configuration × seeds)
// through the parallel evaluation engine and aggregate per-scenario
// accuracy, cache and timing statistics into a deterministic report.

// SweepSpec is the declarative scenario grid: the cross product of the
// gate, VDD-scale, load-scale and stimulus axes over a seed list.
type SweepSpec = sweep.Spec

// SweepStimulus is one point on a sweep's stimulus axis.
type SweepStimulus = sweep.Stimulus

// StimulusMode selects how generated transitions distribute over the
// gate inputs (§VI).
type StimulusMode = gen.Mode

// The two §VI stimulus flavours: LOCAL gives every input its own gap
// sequence (stressing the MIS regime), GLOBAL assigns one global gap
// sequence to random inputs (stressing the SIS regime).
const (
	StimulusLocal  = gen.Local
	StimulusGlobal = gen.Global
)

// SweepScenario is one expanded grid point.
type SweepScenario = sweep.Scenario

// SweepOptions configures a sweep run: the shared worker budget, an
// optional shared golden-trace cache and a progress callback.
type SweepOptions = sweep.Options

// SweepProgress describes one completed sweep step.
type SweepProgress = sweep.Progress

// SweepReport is a sweep's outcome: per-scenario rows in grid order
// with JSON (WriteJSON) and CSV (WriteCSV) encoders.
type SweepReport = sweep.Report

// SweepScenarioResult is one sweep report row.
type SweepScenarioResult = sweep.ScenarioResult

// ExpandSweep validates a sweep spec and expands it into scenarios in
// deterministic grid order.
func ExpandSweep(spec SweepSpec) ([]SweepScenario, error) { return sweep.Expand(spec) }

// RunSweep expands and evaluates a scenario grid on one bounded worker
// pool with a shared golden-trace cache; the report is bit-identical
// regardless of the worker count. It delegates to the default Session:
// operating points measured by earlier calls are served from the
// session's parametrization cache instead of being re-fitted. When
// opt.Cache is nil the report's golden-cache statistics describe a
// private per-call cache (the historical behaviour); pass a cache —
// e.g. DefaultSession().GoldenCache() — to share golden traces across
// calls too.
func RunSweep(spec SweepSpec, opt *SweepOptions) (*SweepReport, error) {
	job := SweepJob{Spec: spec}
	if opt != nil {
		job.Workers, job.Cache = opt.Workers, opt.Cache
		if opt.Progress != nil {
			fn := opt.Progress
			job.Progress = func(p Progress) {
				fn(sweep.Progress{Phase: p.Phase, Scenario: p.Scenario, Seed: p.Seed,
					Completed: p.Completed, Total: p.Total, Err: p.Err})
			}
		}
	}
	if job.Cache == nil {
		job.Cache = NewGoldenCache()
	}
	res, err := DefaultSession().Evaluate(context.Background(), job)
	if err != nil {
		return nil, err
	}
	return res.Sweep, nil
}

// ParseSweepSpec decodes the JSON grid-file format of `hybridlab sweep
// -grid`.
func ParseSweepSpec(r io.Reader) (SweepSpec, error) { return sweep.ParseSpec(r) }

// ApplyGate runs input traces offline through the generalized
// switch-level hybrid channel of a SwitchGate — the n-input counterpart
// of ApplyNOR.
func ApplyGate(g SwitchGate, inputs []Trace, until, isolatedFill float64) (Trace, error) {
	return hybrid.ApplyGate(g, inputs, until, isolatedFill)
}

// ApplyNOR runs two digital input traces through the hybrid NOR channel
// and returns the output trace.
func ApplyNOR(p ModelParams, a, b Trace, until, vn0 float64) (Trace, error) {
	return hybrid.ApplyNOR(p, a, b, until, vn0)
}

// PaperConfigs returns the four waveform configurations of Fig. 7.
func PaperConfigs() []TraceConfig { return gen.PaperConfigs() }

// GenerateTraces produces the random input traces of a configuration.
func GenerateTraces(cfg TraceConfig, seed int64) ([]Trace, error) { return gen.Traces(cfg, seed) }

// DeviationArea is the paper's accuracy metric: total disagreement time
// between two digital traces on [t0, t1].
func DeviationArea(a, b Trace, t0, t1 float64) float64 { return trace.DeviationArea(a, b, t0, t1) }

// NANDParams is the hybrid model of the dual 2-input NAND gate.
type NANDParams = hybrid.NANDParams

// NANDFromDual builds the NAND model dual to a NOR parametrization.
func NANDFromDual(p ModelParams) NANDParams { return hybrid.NANDFromDual(p) }

// ApplyNAND runs two digital input traces through the hybrid NAND
// channel.
func ApplyNAND(n NANDParams, a, b Trace, until, vm0 float64) (Trace, error) {
	return hybrid.ApplyNAND(n, a, b, until, vm0)
}

// SwitchGate is the generalized switch-level RC gate model with any
// number of inputs and internal nodes (n-dimensional modes).
type SwitchGate = hybrid.SwitchGate

// NOR3Params parameterises the 3-input NOR extension.
type NOR3Params = hybrid.NOR3Params

// NOR3FromNOR2 extrapolates a 3-input NOR model from a fitted 2-input
// parametrization.
func NOR3FromNOR2(p ModelParams) NOR3Params { return hybrid.NOR3FromNOR2(p) }

// DelayFunc is a single-history delay function pair delta_up/down(T).
type DelayFunc = dtsim.DelayFunc

// Circuit-composition API (the Involution Tool substitute): build
// netlists of zero-time gates and delay channels and simulate them
// event-driven.

// Simulator is the event-driven digital timing simulator.
type Simulator = dtsim.Simulator

// Net is a named boolean signal in a simulated circuit.
type Net = dtsim.Net

// Gate is a zero-time boolean function between nets.
type Gate = dtsim.Gate

// NewSimulator returns an empty simulator at time zero.
func NewSimulator() *Simulator { return dtsim.NewSimulator() }

// NewNet returns a net with the given initial value.
func NewNet(name string, initial bool) *Net { return dtsim.NewNet(name, initial) }

// NewGate wires a zero-time boolean function from input nets to an
// output net.
func NewGate(name string, fn func([]bool) bool, inputs []*Net, out *Net) (*Gate, error) {
	return dtsim.NewGate(name, fn, inputs, out)
}

// NewChannel wires a single-input delay channel between two nets with
// the given cancellation policy.
func NewChannel(sim *Simulator, name string, in, out *Net, df DelayFunc, policy ChannelPolicy) *dtsim.Channel {
	return dtsim.NewChannelWithPolicy(sim, name, in, out, df, policy)
}

// NewNORChannel wires the paper's 2-input hybrid NOR channel between two
// input nets and an output net.
func NewNORChannel(sim *Simulator, p ModelParams, a, b, out *Net, vn0 float64) (*hybrid.Channel, error) {
	return hybrid.NewChannel(sim, p, a, b, out, vn0)
}

// Drive schedules a trace's transitions onto a net.
func Drive(sim *Simulator, n *Net, tr Trace) error { return dtsim.Drive(sim, n, tr) }

// InverterChain builds a chain of inverters, each followed by a channel
// created by mkChannel, and returns the final output net.
func InverterChain(sim *Simulator, in *Net, stages int, mkChannel func(i int, from, to *Net)) (*Net, error) {
	return dtsim.InverterChain(sim, in, stages, mkChannel)
}

// Common zero-time gate functions.
var (
	FnInv   = dtsim.FnInv
	FnBuf   = dtsim.FnBuf
	FnNOR2  = dtsim.FnNOR2
	FnNAND2 = dtsim.FnNAND2
	FnAND2  = dtsim.FnAND2
	FnOR2   = dtsim.FnOR2
	FnXOR2  = dtsim.FnXOR2
)

// ChannelPolicy selects a channel's pulse-cancellation semantics.
type ChannelPolicy = dtsim.Policy

// The available cancellation policies.
const (
	PolicyInvolution = dtsim.PolicyInvolution
	PolicyInertial   = dtsim.PolicyInertial
)

// ApplyDelay transforms a digital trace through a single-input delay
// channel with the given cancellation policy.
func ApplyDelay(in Trace, df DelayFunc, policy ChannelPolicy) Trace {
	return dtsim.ApplyDelayWithPolicy(in, df, policy)
}

// NOR2Trace returns the zero-delay NOR of two traces.
func NOR2Trace(a, b Trace) Trace { return trace.NOR2(a, b) }

// NewTrace builds a digital trace from an initial value and a sorted
// sequence of transition times (each transition toggles the value).
func NewTrace(initial bool, times ...float64) Trace {
	ev := make([]trace.Event, 0, len(times))
	v := initial
	for _, t := range times {
		v = !v
		ev = append(ev, trace.Event{Time: t, Value: v})
	}
	return trace.New(initial, ev)
}

// Ps converts picoseconds to seconds; ToPs converts seconds to
// picoseconds.
func Ps(v float64) float64   { return waveform.Ps(v) }
func ToPs(v float64) float64 { return waveform.ToPs(v) }
