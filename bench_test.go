package hybriddelay

// The benchmark harness regenerates every table and figure of the paper
// (see DESIGN.md §4 for the experiment index) and reports the headline
// numbers as custom benchmark metrics, so that
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction run. Figures that need the analog golden
// reference share one measurement through lazy setup. Absolute runtimes
// are this machine's; the paper-facing quantities are the ReportMetric
// values (delays in ps, normalized deviation areas).

import (
	"sync"
	"testing"

	"hybriddelay/internal/dtsim"
	"hybriddelay/internal/eval"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/la"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

var benchSetup struct {
	once   sync.Once
	err    error
	bench  *nor.Bench
	target hybrid.Characteristic
	models eval.Models
}

func setupGolden(b *testing.B) (*nor.Bench, hybrid.Characteristic, eval.Models) {
	b.Helper()
	benchSetup.once.Do(func() {
		p := nor.DefaultParams()
		p.MaxStep = 8e-12
		bench, err := nor.New(p)
		if err != nil {
			benchSetup.err = err
			return
		}
		target, err := eval.MeasureCharacteristic(bench)
		if err != nil {
			benchSetup.err = err
			return
		}
		models, err := eval.BuildModels(target, p.Supply, 20e-12)
		if err != nil {
			benchSetup.err = err
			return
		}
		benchSetup.bench = bench
		benchSetup.target = target
		benchSetup.models = models
	})
	if benchSetup.err != nil {
		b.Fatal(benchSetup.err)
	}
	return benchSetup.bench, benchSetup.target, benchSetup.models
}

// hmParams extracts the fitted 2-input NOR parameters from the default
// gate's model set.
func hmParams(m gate.Model) hybrid.Params { return m.(gate.NOR2Model).P }

// BenchmarkFig2Waveforms regenerates the analog transition waveforms of
// Fig. 2a/2c (one falling and one rising transient per iteration).
func BenchmarkFig2Waveforms(b *testing.B) {
	bench, _, _ := setupGolden(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.FallingWaveforms(10e-12); err != nil {
			b.Fatal(err)
		}
		if _, err := bench.RisingWaveforms(40e-12, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2FallingSweep regenerates the golden delta_fall(Delta)
// series of Fig. 2b and reports the MIS speed-up magnitude.
func BenchmarkFig2FallingSweep(b *testing.B) {
	bench, target, _ := setupGolden(b)
	deltas := []float64{-60e-12, -40e-12, -20e-12, 0, 20e-12, 40e-12, 60e-12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.FallingSweep(deltas); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(target.FallZero-target.FallMinusInf)/target.FallMinusInf, "misdip_%")
}

// BenchmarkFig2RisingSweep regenerates the golden delta_rise(Delta)
// series of Fig. 2d and reports the MIS slow-down magnitude.
func BenchmarkFig2RisingSweep(b *testing.B) {
	bench, target, _ := setupGolden(b)
	deltas := []float64{-60e-12, -40e-12, -20e-12, 0, 20e-12, 40e-12, 60e-12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RisingSweep(deltas, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(target.RiseZero-target.RiseMinusInf)/target.RiseMinusInf, "misbump_%")
}

// BenchmarkFig4Trajectories evaluates the four mode trajectories of
// Fig. 4 on a 150-point grid.
func BenchmarkFig4Trajectories(b *testing.B) {
	p := hybrid.TableI()
	vdd := p.Supply.VDD
	cases := []struct {
		mode hybrid.Mode
		v0   la.Vec2
	}{
		{hybrid.Mode00, la.Vec2{}},
		{hybrid.Mode01, la.Vec2{X: vdd, Y: vdd}},
		{hybrid.Mode10, la.Vec2{X: vdd, Y: vdd}},
		{hybrid.Mode11, la.Vec2{X: vdd / 2, Y: vdd}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			tr, err := p.NewTrajectory(c.v0, []hybrid.Phase{{Start: 0, Mode: c.mode}})
			if err != nil {
				b.Fatal(err)
			}
			tr.Sample(0, 150e-12, 150)
		}
	}
}

// BenchmarkTable1Fit regenerates the Table I parametrization (a full
// least-squares fit per iteration) and reports the auto pure delay.
func BenchmarkTable1Fit(b *testing.B) {
	_, target, _ := setupGolden(b)
	supply := waveform.DefaultSupply()
	var dmin float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep, err := hybrid.FitCharacteristic(target, supply, nil)
		if err != nil {
			b.Fatal(err)
		}
		dmin = rep.DMin
	}
	b.ReportMetric(waveform.ToPs(dmin), "dmin_ps")
}

// BenchmarkFig5 regenerates the hybrid falling MIS curve of Fig. 5 and
// reports the worst-case deviation from the golden curve.
func BenchmarkFig5(b *testing.B) {
	bench, target, models := setupGolden(b)
	deltas := []float64{-60e-12, -30e-12, -10e-12, 0, 10e-12, 30e-12, 60e-12}
	golden, err := bench.FallingSweep(deltas)
	if err != nil {
		b.Fatal(err)
	}
	_ = target
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := hmParams(models.HM).FallingSweep(deltas)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for j := range pts {
			d := pts[j].Delay - golden[j].Delay
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(waveform.ToPs(worst), "worst_err_ps")
}

// BenchmarkFig6 regenerates the three rising MIS curves of Fig. 6.
func BenchmarkFig6(b *testing.B) {
	_, _, models := setupGolden(b)
	deltas := []float64{-90e-12, -45e-12, 0, 45e-12, 90e-12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, vn := range []hybrid.VNInitial{hybrid.VNGround, hybrid.VNHalf, hybrid.VNSupply} {
			if _, err := hmParams(models.HM).RisingSweep(deltas, vn); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// fig7Config runs one (reduced-size) Fig. 7 configuration per iteration
// and reports the normalized deviation areas as metrics.
func fig7Config(b *testing.B, cfgIndex int) {
	bench, _, models := setupGolden(b)
	cfg := gen.PaperConfigs()[cfgIndex]
	cfg.Transitions /= 4 // keep a single iteration in the ~1 s range
	var res eval.RunResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = eval.Evaluate(bench, models, cfg, []int64{1, 2})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Normalized[eval.ModelExp], "exp_norm")
	b.ReportMetric(res.Normalized[eval.ModelHM], "hm_norm")
	b.ReportMetric(res.Normalized[eval.ModelHMNoDMin], "hm0_norm")
}

// BenchmarkFig7Accuracy regenerates the deviation-area comparison of
// Fig. 7, one sub-benchmark per waveform configuration.
func BenchmarkFig7Accuracy(b *testing.B) {
	names := []string{"local_100_50", "local_200_100", "global_2000_1000", "global_5000_5"}
	for i, name := range names {
		i := i
		b.Run(name, func(b *testing.B) { fig7Config(b, i) })
	}
}

// BenchmarkFig8 regenerates the pure-delay ablation curves of Fig. 8 and
// reports the Delta = 0 error of the ablated model.
func BenchmarkFig8(b *testing.B) {
	bench, _, models := setupGolden(b)
	goldenZero, err := bench.FallingDelay(0)
	if err != nil {
		b.Fatal(err)
	}
	deltas := []float64{-60e-12, -30e-12, 0, 30e-12, 60e-12}
	var zeroErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with, err := hmParams(models.HM).FallingSweep(deltas)
		if err != nil {
			b.Fatal(err)
		}
		without, err := hmParams(models.HMNoDMin).FallingSweep(deltas)
		if err != nil {
			b.Fatal(err)
		}
		_ = with
		zeroErr = without[2].Delay - goldenZero
	}
	b.ReportMetric(waveform.ToPs(zeroErr), "hm0_zero_err_ps")
}

// BenchmarkCharlieFormulas evaluates the closed-form characteristic
// delay expressions (8)-(12) and reports the worst deviation from the
// exact solver in femtoseconds.
func BenchmarkCharlieFormulas(b *testing.B) {
	p := hybrid.TableI()
	exact, err := p.Characteristic()
	if err != nil {
		b.Fatal(err)
	}
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := p.CharlieCharacteristic()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		e := exact.AsSlice()
		g := f.AsSlice()
		for j := range e {
			d := g[j] - e[j]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst/1e-15, "worst_err_fs")
}

// benchTrace builds a canonical stimulus pair for the channel-overhead
// comparison (§VI's ~6% runtime claim).
func benchTrace() (trace.Trace, trace.Trace, float64) {
	cfg := gen.PaperConfigs()[0]
	cfg.Transitions = 400
	inputs, err := gen.Traces(cfg, 7)
	if err != nil {
		panic(err)
	}
	until := gen.Horizon(inputs, 600e-12)
	return inputs[0], inputs[1], until
}

// BenchmarkChannelOverheadInertial measures the per-arc inertial model.
func BenchmarkChannelOverheadInertial(b *testing.B) {
	_, _, models := setupGolden(b)
	a, tb, _ := benchTrace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		models.Inertial.Apply(models.Gate.Logic, a, tb)
	}
}

// BenchmarkChannelOverheadExp measures the output-placed exp-channel.
func BenchmarkChannelOverheadExp(b *testing.B) {
	_, _, models := setupGolden(b)
	a, tb, _ := benchTrace()
	ideal := trace.NOR2(a, tb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dtsim.ApplyDelay(ideal, models.Exp)
	}
}

// BenchmarkChannelOverheadHybrid measures the full hybrid NOR channel.
func BenchmarkChannelOverheadHybrid(b *testing.B) {
	_, _, models := setupGolden(b)
	a, tb, until := benchTrace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hybrid.ApplyNOR(hmParams(models.HM), a, tb, until, 0.8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGoldenTransient measures one analog golden run of the same
// stimulus (the cost the digital models exist to avoid).
func BenchmarkGoldenTransient(b *testing.B) {
	bench, _, _ := setupGolden(b)
	a, tb, until := benchTrace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.GoldenNOR(bench, a, tb, until); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFallingDelayQuery measures a single MIS delay query on the
// hybrid model (the operation a timing engine performs per event).
func BenchmarkFallingDelayQuery(b *testing.B) {
	p := hybrid.TableI()
	for i := 0; i < b.N; i++ {
		if _, err := p.FallingDelay(10e-12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRisingDelayQuery is the rising-side counterpart.
func BenchmarkRisingDelayQuery(b *testing.B) {
	p := hybrid.TableI()
	for i := 0; i < b.N; i++ {
		if _, err := p.RisingDelay(-10e-12, hybrid.VNGround); err != nil {
			b.Fatal(err)
		}
	}
}
