// Command hybridlint runs the repo's static invariant analyzers
// (noalloc, detmap, keycomplete, lockhold — see internal/analysis)
// over the whole module and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/hybridlint ./...
//
// Package patterns are accepted for command-line familiarity but the
// analyzers always load and check the entire module: the noalloc and
// keycomplete checks are transitive across packages, so a partial load
// would silently weaken them.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hybriddelay/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hybridlint [packages]\n\nRuns the module-wide static invariant analyzers; package\narguments are accepted but the whole module is always checked.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybridlint: %v\n", err)
		os.Exit(2)
	}
	m, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybridlint: loading module: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.RunAll(m)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hybridlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Printf("hybridlint: ok (%d packages, 4 analyzers)\n", len(m.Pkgs))
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
