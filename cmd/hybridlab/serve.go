package main

// `hybridlab serve` runs the session engine as a long-lived
// multi-tenant HTTP service, and `hybridlab loadgen` drives a mixed
// concurrent client load against one (spawning an in-process server by
// default) and writes the BENCH_serve.json latency/throughput report.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hybriddelay/internal/serve"
	"hybriddelay/internal/session"
	"hybriddelay/internal/spice"
)

// serveOptions carries the `hybridlab serve` flags.
type serveOptions struct {
	addr      string
	parallel  int
	fast      bool
	store     string
	solver    string
	perClient int
	maxActive int
	backlog   int
	golden    int64
	params    int

	stdout io.Writer
	stderr io.Writer

	// Test hooks: ready (when non-nil) receives the bound base URL once
	// the listener is up, and a close of stop shuts the server down the
	// same way a SIGINT would.
	ready func(url string)
	stop  <-chan struct{}
}

// serveFlags registers the flags shared by serve and loadgen (both
// build the same server).
func serveFlags(fs *flag.FlagSet, o *serveOptions) {
	fs.IntVar(&o.parallel, "parallel", runtime.GOMAXPROCS(0), "evaluation workers of the shared session (1 = serial)")
	fs.BoolVar(&o.fast, "fast", false, "coarser integrator step (quick exploration; changes results)")
	fs.StringVar(&o.store, "store", "", "persistent golden-store directory (created if missing; warm-starts restarts)")
	fs.IntVar(&o.perClient, "per-client", 0, "concurrently running jobs per client (0 = default 2)")
	fs.IntVar(&o.maxActive, "max-active", 0, "concurrently running jobs overall (0 = default 2×per-client)")
	fs.IntVar(&o.backlog, "backlog", 0, "admission backlog capacity before 429 (0 = default 16)")
	fs.Int64Var(&o.golden, "golden-budget", 0, "golden cache memory bound in stored transitions (0 = unbounded)")
	fs.IntVar(&o.params, "param-limit", 0, "operating points retained by the parametrization cache (0 = unbounded)")
}

// buildServer assembles the session and server behind both
// subcommands. The returned cleanup reports store traffic and closes
// it (after the server has been shut down).
func (o *serveOptions) buildServer(stderr io.Writer) (*serve.Server, func(), error) {
	solver, err := spice.ParseSolverMode(o.solver)
	if err != nil {
		return nil, nil, err
	}
	st, finishStore, err := openStore(o.store, stderr)
	if err != nil {
		return nil, nil, err
	}
	p := benchParams(options{fast: o.fast})
	p.Solver = solver
	sopt := session.Options{
		Workers:      o.parallel,
		Solver:       solver,
		BaseParams:   &p,
		GoldenBudget: o.golden,
		ParamLimit:   o.params,
	}
	if st != nil {
		sopt.Store = st
	}
	srv, err := serve.NewServer(serve.Options{
		Session:   session.New(sopt),
		Store:     st,
		MaxActive: o.maxActive,
		PerClient: o.perClient,
		Backlog:   o.backlog,
	})
	if err != nil {
		finishStore()
		return nil, nil, err
	}
	return srv, finishStore, nil
}

// runServeCmd is the `hybridlab serve` entry point: it binds the
// listener, serves until SIGINT/SIGTERM, then drains in-flight jobs
// and flushes the golden store before exiting.
func runServeCmd(args []string) error {
	var o serveOptions
	fs := newSubFlags("serve")
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	serveFlags(fs, &o)
	solverFlagVar(fs, &o.solver)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return o.run()
}

// run serves until SIGINT/SIGTERM (or the stop test hook), then drains.
func (o *serveOptions) run() error {
	_, stderr := subIO(o.stdout, o.stderr)

	srv, finishStore, err := o.buildServer(stderr)
	if err != nil {
		return err
	}
	defer finishStore()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(stderr, "serve: listening on http://%s (POST /v1/jobs, GET /metrics)\n", ln.Addr())
	if o.ready != nil {
		o.ready("http://" + ln.Addr().String())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case sig := <-sigc:
		fmt.Fprintf(stderr, "serve: %v: draining in-flight jobs\n", sig)
	case <-o.stop:
		fmt.Fprintf(stderr, "serve: stop requested: draining in-flight jobs\n")
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}

	// Stop accepting connections first, then drain the job table and
	// flush the session's durable state.
	sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "serve: listener shutdown: %v\n", err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	m := srv.MetricsSnapshot()
	fmt.Fprintf(stderr, "serve: drained; %d jobs admitted, %d rejected\n",
		m.Admission.Admitted, m.Admission.Rejected)
	return nil
}

// loadgenOptions carries the `hybridlab loadgen` flags.
type loadgenOptions struct {
	serveOptions
	url     string
	clients int
	jobs    int
	out     string
	verify  bool
}

// runLoadgenCmd is the `hybridlab loadgen` entry point: it drives N
// concurrent mixed-kind clients against -url (or an in-process server
// when -url is empty), verifies the server's results against a fresh
// one-shot session, and writes the BENCH_serve.json report.
func runLoadgenCmd(args []string) error {
	var o loadgenOptions
	fs := newSubFlags("loadgen")
	fs.StringVar(&o.url, "url", "", "base URL of a running server (empty: spawn an in-process server)")
	fs.IntVar(&o.clients, "clients", 8, "concurrent clients (each its own API key)")
	fs.IntVar(&o.jobs, "jobs", 2, "jobs per client")
	fs.StringVar(&o.out, "out", "BENCH_serve.json", "report output path (- for stdout)")
	fs.BoolVar(&o.verify, "verify", true, "replay every distinct job on a one-shot session and require byte-identical results")
	serveFlags(fs, &o.serveOptions)
	solverFlagVar(fs, &o.solver)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return o.run()
}

// run drives the load and writes the report.
func (o *loadgenOptions) run() error {
	stdout, stderr := subIO(o.stdout, o.stderr)

	baseURL := o.url
	if baseURL == "" {
		srv, finishStore, err := o.buildServer(stderr)
		if err != nil {
			return err
		}
		defer finishStore()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		baseURL = "http://" + ln.Addr().String()
		fmt.Fprintf(stderr, "loadgen: in-process server on %s\n", baseURL)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			hs.Shutdown(sctx)
			srv.Shutdown(sctx)
		}()
	}

	lopt := serve.LoadOptions{Clients: o.clients, JobsPerClient: o.jobs}
	if o.verify {
		// The reference session runs the same operating point but none
		// of the server's caches: a genuinely independent one-shot run.
		p := benchParams(options{fast: o.fast})
		solver, err := spice.ParseSolverMode(o.solver)
		if err != nil {
			return err
		}
		p.Solver = solver
		lopt.Reference = session.New(session.Options{Workers: o.parallel, Solver: solver, BaseParams: &p})
	}
	fmt.Fprintf(stderr, "loadgen: %d clients × %d jobs against %s\n", o.clients, o.jobs, baseURL)
	rep, err := serve.RunLoad(context.Background(), baseURL, lopt)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "loadgen: %d jobs in %.2fs (%.1f jobs/s), p50 %.1f ms, p99 %.1f ms, %d failures, %d retries\n",
		rep.Jobs, rep.WallSeconds, rep.JobsPerSec, rep.P50Ms, rep.P99Ms, rep.Failures, rep.Retries429)
	if rep.Verified && !rep.ByteIdentical {
		fmt.Fprintf(stderr, "loadgen: WARNING: server results diverge from the one-shot reference\n")
	}

	var w io.Writer = stdout
	closeReport := func() error { return nil }
	if o.out != "" && o.out != "-" {
		w, closeReport, err = openReport(o.out, stdout)
		if err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		closeReport()
		return err
	}
	if err := closeReport(); err != nil {
		return err
	}
	if rep.Failures > 0 {
		return fmt.Errorf("%d of %d jobs failed", rep.Failures, rep.Failures+rep.Jobs)
	}
	if rep.Verified && !rep.ByteIdentical {
		return fmt.Errorf("server results diverge from the one-shot reference")
	}
	return nil
}
