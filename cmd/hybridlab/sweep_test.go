package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hybriddelay/internal/gen"
	"hybriddelay/internal/sweep"
	"hybriddelay/internal/waveform"
)

// fastSweepOpts returns sweep flags sized for test runs.
func fastSweepOpts() sweepOptions {
	return sweepOptions{
		gates: "nor2", vdd: "1", load: "1", modes: "local",
		mu: "200", sigma: "100", trans: 10, reps: 1, seed: 1,
		fast: true, parallel: 2,
	}
}

func TestSweepSpecFromFlags(t *testing.T) {
	o := fastSweepOpts()
	o.gates = "nor2, nand2"
	o.vdd = "1,0.9"
	o.modes = "local,global"
	o.mu = "100,200"
	o.sigma = "50,100"
	spec, err := o.spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Gates) != 2 || len(spec.VDDScale) != 2 {
		t.Fatalf("spec axes: %+v", spec)
	}
	// 2 modes × 2 (mu, sigma) pairs.
	if len(spec.Stimuli) != 4 {
		t.Fatalf("stimuli: %+v", spec.Stimuli)
	}
	if spec.Stimuli[0].Mode != gen.Local || spec.Stimuli[2].Mode != gen.Global {
		t.Errorf("mode order: %+v", spec.Stimuli)
	}
	if spec.Stimuli[0].Mu != waveform.Ps(100) || spec.Stimuli[0].Sigma != waveform.Ps(50) {
		t.Errorf("ps conversion: %+v", spec.Stimuli[0])
	}
	if len(spec.Seeds) != 1 || spec.Seeds[0] != 1 {
		t.Errorf("seeds: %v", spec.Seeds)
	}
	if spec.Bench == nil || spec.Bench.MaxStep != 8e-12 {
		t.Errorf("-fast did not coarsen the bench: %+v", spec.Bench)
	}

	// Sigma broadcasting: one sigma pairs with every mu.
	o = fastSweepOpts()
	o.mu = "100,200,400"
	spec, err = o.spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Stimuli) != 3 || spec.Stimuli[2].Sigma != waveform.Ps(100) {
		t.Errorf("sigma broadcast: %+v", spec.Stimuli)
	}

	// Mismatched pair lengths error.
	o = fastSweepOpts()
	o.mu = "100,200"
	o.sigma = "50,60,70"
	if _, err := o.spec(); err == nil {
		t.Error("mismatched -mu/-sigma lengths accepted")
	}
	o = fastSweepOpts()
	o.modes = "sideways"
	if _, err := o.spec(); err == nil {
		t.Error("unknown mode accepted")
	}
	o = fastSweepOpts()
	o.vdd = "1,x"
	if _, err := o.spec(); err == nil {
		t.Error("malformed -vdd accepted")
	}
}

func TestSweepSpecFromGridFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.json")
	grid := `{
		"gates": ["nand2"],
		"vdd_scale": [0.95],
		"stimuli": [{"mode": "GLOBAL", "mu": 500e-12, "sigma": 100e-12, "transitions": 8}],
		"seeds": [42]
	}`
	if err := os.WriteFile(path, []byte(grid), 0o644); err != nil {
		t.Fatal(err)
	}
	o := fastSweepOpts()
	o.grid = path
	spec, err := o.spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Gates) != 1 || spec.Gates[0] != "nand2" {
		t.Errorf("grid gates: %v", spec.Gates)
	}
	if len(spec.Seeds) != 1 || spec.Seeds[0] != 42 {
		t.Errorf("grid seeds not honoured: %v", spec.Seeds)
	}

	// A grid file's seed_count/base_seed must win over the flag
	// defaults (the flags configure flag-built specs only).
	countPath := filepath.Join(dir, "grid_count.json")
	gridCount := `{
		"stimuli": [{"mode": "LOCAL", "mu": 100e-12, "sigma": 50e-12, "transitions": 8}],
		"seed_count": 5, "base_seed": 30
	}`
	if err := os.WriteFile(countPath, []byte(gridCount), 0o644); err != nil {
		t.Fatal(err)
	}
	o = fastSweepOpts()
	o.grid = countPath
	spec, err = o.spec()
	if err != nil {
		t.Fatal(err)
	}
	if seeds := spec.SeedList(); len(seeds) != 5 || seeds[0] != 30 {
		t.Errorf("grid seed_count/base_seed overridden by flags: %v", seeds)
	}

	o.grid = filepath.Join(dir, "missing.json")
	if _, err := o.spec(); err == nil {
		t.Error("missing grid file accepted")
	}
}

// TestSweepCommandEndToEnd runs the subcommand against the real analog
// bench and checks both encoders' outputs parse.
func TestSweepCommandEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep in -short mode")
	}
	o := fastSweepOpts()
	o.gates = "nor2,nand2"
	o.vdd = "1,0.95"
	o.modes = "local,global"
	var stdout, stderr bytes.Buffer
	o.stdout, o.stderr = &stdout, &stderr
	if err := o.run(); err != nil {
		t.Fatal(err)
	}
	var rep sweep.Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout.String())
	}
	if len(rep.Scenarios) != 8 {
		t.Errorf("report has %d scenarios, want 8 (2 gates × 2 VDD × 2 modes)", len(rep.Scenarios))
	}
	if !strings.Contains(stderr.String(), "scenarios") {
		t.Errorf("progress summary missing from stderr: %s", stderr.String())
	}

	// CSV to -out keeps stdout empty.
	dir := t.TempDir()
	path := filepath.Join(dir, "report.csv")
	o = fastSweepOpts()
	o.csv = true
	o.out = path
	stdout.Reset()
	stderr.Reset()
	o.stdout, o.stderr = &stdout, &stderr
	if err := o.run(); err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Errorf("-out still wrote to stdout: %s", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 { // header + 1 scenario
		t.Errorf("CSV report has %d lines:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "index,gate,") {
		t.Errorf("CSV header malformed: %s", lines[0])
	}
}
