package main

import (
	"bytes"
	"strings"
	"testing"

	"hybriddelay/internal/gate"
)

// Smoke tests: every experiment must run to completion in fast mode.
// Output formatting is checked implicitly (panics/errors fail the test).

func fastOpts() options {
	return options{fast: true, reps: 1, trans: 24, seed: 1}
}

func TestRunCharlie(t *testing.T) {
	if err := runCharlie(fastOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig4(t *testing.T) {
	if err := runFig4(fastOpts()); err != nil {
		t.Fatal(err)
	}
	o := fastOpts()
	o.csv = true
	if err := runFig4(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig2Wave(t *testing.T) {
	if err := runFig2Wave(fastOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig2Sweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweeps in -short mode")
	}
	o := fastOpts()
	o.csv = true
	if err := runFig2Fall(o); err != nil {
		t.Fatal(err)
	}
	if err := runFig2Rise(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable1AndFigs(t *testing.T) {
	if testing.Short() {
		t.Skip("fit experiments in -short mode")
	}
	if err := runTable1(fastOpts()); err != nil {
		t.Fatal(err)
	}
	o := fastOpts()
	o.csv = true
	if err := runFig5(o); err != nil {
		t.Fatal(err)
	}
	if err := runFig6(o); err != nil {
		t.Fatal(err)
	}
	if err := runFig8(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy pipeline in -short mode")
	}
	if err := runFig7(fastOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extension benches in -short mode")
	}
	if err := runNAND(fastOpts()); err != nil {
		t.Fatal(err)
	}
	if err := runNOR3(fastOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestPlotHelpers(t *testing.T) {
	s := asciiPlot("t", "x", "y", 40, 10, []series{
		{name: "a", marker: '*', xs: []float64{0, 1, 2}, ys: []float64{0, 1, 0}},
	})
	if s == "" {
		t.Error("empty plot")
	}
	// Degenerate ranges must not panic.
	s = asciiPlot("t", "x", "y", 0, 0, []series{
		{name: "a", marker: '*', xs: []float64{1, 1}, ys: []float64{2, 2}},
	})
	if s == "" {
		t.Error("empty degenerate plot")
	}
	c := csvOut("x", []series{
		{name: "a", xs: []float64{0, 1}, ys: []float64{5, 6}},
		{name: "b", xs: []float64{0, 1}, ys: []float64{7, 8}},
	})
	if c == "" {
		t.Error("empty csv")
	}
	b := barChart("t", []string{"g1"}, []string{"m"}, map[string][]float64{"m": {0.5}}, 10)
	if b == "" {
		t.Error("empty bar chart")
	}
	if csvOut("x", nil) == "" {
		t.Error("empty-series csv should still have a header")
	}
	if barChart("t", []string{"g"}, []string{"m"}, map[string][]float64{"m": {0}}, 0) == "" {
		t.Error("zero-value bars should render")
	}
}

func TestFindAt(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2}
	ys := []float64{10, 11, 12, 13, 14}
	if v := findAt(xs, ys, 0.1); v != 12 {
		t.Errorf("findAt = %g, want 12", v)
	}
}

func TestSeedList(t *testing.T) {
	o := options{seeds: "3, 5,8", reps: 2, seed: 100}
	got, err := o.seedList()
	if err != nil || len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 8 {
		t.Fatalf("explicit list: %v, %v", got, err)
	}
	o = options{reps: 3, seed: 10}
	if got, _ = o.seedList(); len(got) != 3 || got[0] != 10 || got[2] != 12 {
		t.Fatalf("reps expansion: %v", got)
	}
	o = options{reps: 5, seed: 1, fast: true}
	if got, _ = o.seedList(); len(got) != 2 {
		t.Fatalf("fast cap: %v", got)
	}
	o = options{seeds: "1,x"}
	if _, err = o.seedList(); err == nil {
		t.Fatal("bad seed entry accepted")
	}
}

func TestGateSpecResolution(t *testing.T) {
	for _, name := range []string{"", "nor2", "nand2", "nor3"} {
		o := options{gate: name}
		g, err := o.gateSpec()
		if err != nil {
			t.Fatalf("gateSpec(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = "nor2"
		}
		if g.Name() != want {
			t.Errorf("gateSpec(%q) = %q", name, g.Name())
		}
	}
	o := options{gate: "xor7"}
	_, err := o.gateSpec()
	if err == nil {
		t.Fatal("unknown gate accepted")
	}
	for _, name := range gate.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-gate error %q does not list %q", err, name)
		}
	}
}

func TestListGates(t *testing.T) {
	var buf bytes.Buffer
	listGates(&buf)
	out := buf.String()
	for _, name := range gate.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("-list-gates output missing %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "(default)") {
		t.Errorf("-list-gates output does not mark the default:\n%s", out)
	}
}

func TestRunFig7Gates(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy pipeline in -short mode")
	}
	for _, name := range []string{"nand2", "nor3"} {
		o := fastOpts()
		o.gate = name
		if err := runFig7(o); err != nil {
			t.Fatalf("fig7 -gate %s: %v", name, err)
		}
	}
}

func TestRunFig7UnknownGate(t *testing.T) {
	o := fastOpts()
	o.gate = "bogus"
	if err := runFig7(o); err == nil {
		t.Fatal("fig7 with unknown gate did not error")
	}
}
