package main

import (
	"fmt"

	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/waveform"
)

// runNAND compares the duality-derived NAND model against the
// transistor-level NAND bench (extension X1 of DESIGN.md).
func runNAND(opt options) error {
	p := nor.DefaultParams()
	if opt.fast {
		p.MaxStep = 8e-12
	}
	bench, err := nor.NewNAND(p)
	if err != nil {
		return err
	}
	analog, err := bench.Characteristic()
	if err != nil {
		return err
	}
	model := hybrid.NANDFromDual(hybrid.TableI())
	mc, err := model.Characteristic()
	if err != nil {
		return err
	}
	fmt.Println("2-input NAND (structural dual of the paper's NOR):")
	fmt.Printf("  %-22s %10s %10s\n", "characteristic delay", "analog", "model*")
	rows := []struct {
		name string
		a, m float64
	}{
		{"fall(-inf) [ps]", analog.FallMinusInf, mc.FallMinusInf},
		{"fall(0)    [ps]", analog.FallZero, mc.FallZero},
		{"fall(+inf) [ps]", analog.FallPlusInf, mc.FallPlusInf},
		{"rise(-inf) [ps]", analog.RiseMinusInf, mc.RiseMinusInf},
		{"rise(0)    [ps]", analog.RiseZero, mc.RiseZero},
		{"rise(+inf) [ps]", analog.RisePlusInf, mc.RisePlusInf},
	}
	for _, r := range rows {
		fmt.Printf("  %-22s %10.2f %10.2f\n", r.name, waveform.ToPs(r.a), waveform.ToPs(r.m))
	}
	fmt.Println("  (*Table I dual, not refitted — compare shapes: rising speed-up,")
	fmt.Println("   falling slow-down, stack direction slower than parallel.)")
	return nil
}

// runNOR3 compares the generalized 3-input switch-level model against
// the transistor-level 3-input bench (extension of the paper's
// multi-input premise).
func runNOR3(opt options) error {
	p := nor.DefaultParams()
	if opt.fast {
		p.MaxStep = 8e-12
	}
	bench, err := nor.NewNOR3(p)
	if err != nil {
		return err
	}
	model := hybrid.NOR3FromNOR2(hybrid.TableI())
	mc, err := model.Characteristic3()
	if err != nil {
		return err
	}
	aAll, err := bench.FallingDelay3(0, 0)
	if err != nil {
		return err
	}
	aTwo, err := bench.FallingDelay3(0, nor.SISFar)
	if err != nil {
		return err
	}
	aSIS, err := bench.FallingDelay3(nor.SISFar, 2*nor.SISFar)
	if err != nil {
		return err
	}
	aRise, err := bench.RisingDelay3(0, 0, 0)
	if err != nil {
		return err
	}
	fmt.Println("3-input NOR (generalized switch-level hybrid model, 3x3 modes):")
	fmt.Printf("  %-28s %10s %10s\n", "delay", "analog", "model*")
	fmt.Printf("  %-28s %10.2f %10.2f\n", "fall, all simultaneous [ps]", waveform.ToPs(aAll), waveform.ToPs(mc.FallAllZero))
	fmt.Printf("  %-28s %10.2f %10.2f\n", "fall, two simultaneous [ps]", waveform.ToPs(aTwo), waveform.ToPs(mc.FallTwoZero))
	fmt.Printf("  %-28s %10.2f %10.2f\n", "fall, SIS [ps]", waveform.ToPs(aSIS), waveform.ToPs(mc.FallSIS))
	fmt.Printf("  %-28s %10.2f %10.2f\n", "rise, all simultaneous [ps]", waveform.ToPs(aRise), waveform.ToPs(mc.RiseAllZero))
	fmt.Printf("  three-way MIS dip: analog %.1f%%, model %.1f%% (ideal-switch bound -67%%)\n",
		100*(aAll-aSIS)/aSIS, 100*(mc.FallAllZero-mc.FallSIS)/mc.FallSIS)
	fmt.Println("  (*extrapolated from the Table I 2-input fit, not refitted.)")
	return nil
}
