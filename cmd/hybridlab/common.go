package main

// Shared subcommand plumbing: every hybridlab subcommand resolves its
// output streams, reports errors, exits and renders progress the same
// way, and unknown gate / netlist names fail with the same uniform
// errors no matter which subcommand looked them up.

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/session"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/store"
)

// subMain runs a subcommand body with the uniform error prefix and
// exit code: "hybridlab <name>: <error>" on stderr, exit 1.
func subMain(name string, run func() error) {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hybridlab %s: %v\n", name, err)
		os.Exit(1)
	}
}

// newSubFlags returns a subcommand's flag set with the uniform
// parse-error behaviour (print usage, exit code 2 — the same contract
// as the experiment flags).
func newSubFlags(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ExitOnError)
}

// subIO resolves a subcommand's output streams; tests override them,
// the binary passes nil for the process defaults.
func subIO(stdout, stderr io.Writer) (io.Writer, io.Writer) {
	if stdout == nil {
		stdout = os.Stdout
	}
	if stderr == nil {
		stderr = os.Stderr
	}
	return stdout, stderr
}

// openReport resolves the report destination: the -out path when set,
// otherwise the given default writer. The returned close function is a
// no-op for the default writer.
func openReport(out string, stdout io.Writer) (io.Writer, func() error, error) {
	if out == "" {
		return stdout, func() error { return nil }, nil
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// findGate resolves a -gate flag against the registry; unknown names
// error with the registered names (the registry's uniform error).
func findGate(name string) (gate.Gate, error) {
	return gate.Find(name)
}

// findNetlist resolves a circuit source: a JSON netlist file when path
// is set, otherwise a shipped builtin by name — unknown builtin names
// error with the available names, matching the gate registry's style.
func findNetlist(name, path string) (*netlist.Netlist, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.Parse(f)
	}
	return netlist.Builtin(name)
}

// openStore opens the persistent golden store named by a -store flag
// and returns it with a finish function that flushes pending writes,
// reports the store's traffic on stderr and closes it. An empty dir
// means no persistence: a nil store and a no-op finish. The caller
// must only mount the store into session options when it is non-nil.
func openStore(dir string, stderr io.Writer) (*store.Store, func(), error) {
	if dir == "" {
		return nil, func() {}, nil
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("golden store: %w", err)
	}
	finish := func() {
		if err := st.Flush(); err != nil {
			fmt.Fprintf(stderr, "golden store: flush: %v\n", err)
		}
		s := st.Stats()
		fmt.Fprintf(stderr, "golden store %s: %d disk hits, %d misses, %d corrupt, %d writes (%d failed)\n",
			dir, s.Hits, s.Misses, s.Corrupt, s.Writes, s.WriteErrors)
		if err := st.Close(); err != nil {
			fmt.Fprintf(stderr, "golden store: close: %v\n", err)
		}
	}
	return st, finish, nil
}

// solverFlagVar registers the shared -solver flag on a flag set, so
// every analog subcommand documents the same two spellings.
func solverFlagVar(fs *flag.FlagSet, dst *string) {
	fs.StringVar(dst, "solver", spice.DenseExact.String(),
		"linear-solver strategy: dense-exact (bit-identical reference) or sparse-fast (structurally sparse, numerically equivalent)")
}

// reportSolver prints the MNA solver traffic of a finished job on
// stderr — how much linear algebra the delay evaluation actually ran,
// and how much of it the sparse path saved. Nothing is printed for a
// job that ran no transients.
func reportSolver(stderr io.Writer, st spice.SolverStats) {
	if st.Steps == 0 && st.Iterations == 0 {
		return
	}
	fmt.Fprintf(stderr, "solver: %d steps (%d rejected), %d Newton iterations, %d factorizations (%d reused LU)\n",
		st.Steps, st.Rejected, st.Iterations, st.Factorizations, st.Reused)
	if st.SparseFactorizations > 0 || st.LinearReuses > 0 || st.SparseFallbacks > 0 {
		fmt.Fprintf(stderr, "solver: sparse path: %d sparse factorizations, %d dense fallbacks, %d linear restamps skipped\n",
			st.SparseFactorizations, st.SparseFallbacks, st.LinearReuses)
	}
	if st.SymbolicHits > 0 || st.SymbolicMisses > 0 {
		fmt.Fprintf(stderr, "solver: symbolic cache: %d hits, %d misses, %d supernodes adopted\n",
			st.SymbolicHits, st.SymbolicMisses, st.Supernodes)
	}
}

// sessionProgress renders the session's unified progress stream as
// stderr ticker lines: the prepare phase counts operating points, the
// evaluation phase counts units under the given verb.
func sessionProgress(stderr io.Writer, evalVerb string) func(session.Progress) {
	return func(p session.Progress) {
		verb := evalVerb
		if p.Phase == session.PhasePrepare {
			verb = "preparing operating points"
		}
		fmt.Fprintf(stderr, "\r%s %d/%d", verb, p.Completed, p.Total)
		if p.Completed == p.Total {
			fmt.Fprintln(stderr)
		}
	}
}
