package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hybriddelay/internal/gate"
)

// runCircuit executes the circuit subcommand with captured output.
func runCircuit(t *testing.T, o circuitOptions) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	o.stdout, o.stderr = &stdout, &stderr
	err := o.run()
	return stdout.String(), err
}

func TestRunCircuitCmdChain(t *testing.T) {
	if testing.Short() {
		t.Skip("composed analog transients in -short mode")
	}
	out, err := runCircuit(t, circuitOptions{
		name: "nor-invchain", mode: "local", mu: 200, sigma: 100,
		trans: 8, reps: 1, seed: 1, parallel: 2, fast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"circuit nor-invchain", "y0", "y3", "TOTAL", "hm"} {
		if !strings.Contains(out, want) {
			t.Errorf("circuit output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCircuitCmdCSVAndOut(t *testing.T) {
	if testing.Short() {
		t.Skip("composed analog transients in -short mode")
	}
	path := filepath.Join(t.TempDir(), "report.csv")
	_, err := runCircuit(t, circuitOptions{
		name: "nor-invchain", mode: "local", mu: 200, sigma: 100,
		trans: 8, reps: 1, seed: 1, parallel: 2, fast: true,
		csv: true, out: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header + 4 nets + TOTAL.
	if len(lines) != 6 {
		t.Errorf("CSV has %d lines, want 6:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "net,golden_events,area_inertial,norm_inertial") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[len(lines)-1], "TOTAL,") {
		t.Errorf("last CSV row = %q, want TOTAL", lines[len(lines)-1])
	}
}

// TestRunCircuitCmdSparseSolver: -solver sparse-fast produces the same
// report shape, and the stderr traffic report proves the sparse kernel
// actually carried the transients.
func TestRunCircuitCmdSparseSolver(t *testing.T) {
	if testing.Short() {
		t.Skip("composed analog transients in -short mode")
	}
	var stdout, stderr bytes.Buffer
	o := circuitOptions{
		name: "nor-invchain", mode: "local", mu: 200, sigma: 100,
		trans: 8, reps: 1, seed: 1, parallel: 2, fast: true,
		solver: "sparse-fast",
		stdout: &stdout, stderr: &stderr,
	}
	if err := o.run(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"circuit nor-invchain", "TOTAL"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("sparse circuit output missing %q:\n%s", want, stdout.String())
		}
	}
	if !strings.Contains(stderr.String(), "sparse factorizations") {
		t.Errorf("stderr has no sparse solver traffic report:\n%s", stderr.String())
	}

	o.solver = "warp-drive"
	if err := o.run(); err == nil || !strings.Contains(err.Error(), "unknown solver mode") {
		t.Errorf("bad -solver error = %v", err)
	}
}

// TestRunCircuitCmdNetlistFile: -netlist files parse through the
// shared validation, so an unknown gate fails with the registry's
// uniform error listing the registered names.
func TestRunCircuitCmdNetlistFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	js := `{"inputs": ["a", "b"], "instances": [
	  {"name": "g", "gate": "xor9", "inputs": ["a", "b"], "output": "o"}
	]}`
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := runCircuit(t, circuitOptions{netlistPath: path, mode: "local", mu: 200, sigma: 100, trans: 8, reps: 1})
	if err == nil {
		t.Fatal("unknown gate accepted")
	}
	if !strings.Contains(err.Error(), "unknown gate") {
		t.Errorf("error %q is not the uniform unknown-gate error", err)
	}
	for _, name := range gate.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered gate %q", err, name)
		}
	}
}

func TestRunCircuitCmdUnknownBuiltin(t *testing.T) {
	_, err := runCircuit(t, circuitOptions{name: "bogus", mode: "local", mu: 200, sigma: 100, trans: 8, reps: 1})
	if err == nil || !strings.Contains(err.Error(), "nor-invchain") {
		t.Errorf("unknown-builtin error %v does not list the shipped circuits", err)
	}
	if err := runCircuitCmd([]string{"-name", "bogus"}); err == nil {
		t.Error("runCircuitCmd accepted an unknown builtin")
	}
	_, err = runCircuit(t, circuitOptions{name: "c17", mode: "sideways", mu: 200, sigma: 100, trans: 8, reps: 1})
	if err == nil || !strings.Contains(err.Error(), "unknown stimulus mode") {
		t.Errorf("bad -mode error = %v", err)
	}
	_, err = runCircuit(t, circuitOptions{name: "c17", mode: "local", mu: 200, sigma: 100, trans: 8, seeds: "1,x"})
	if err == nil {
		t.Error("bad -seeds accepted")
	}
	_, err = runCircuit(t, circuitOptions{netlistPath: filepath.Join(t.TempDir(), "missing.json"), mode: "local", mu: 200, sigma: 100, trans: 8, reps: 1})
	if err == nil {
		t.Error("missing -netlist file accepted")
	}
}

// TestListGatesColumns: the listing is sorted (gate.Names is sorted)
// and carries arity and description columns.
func TestListGatesColumns(t *testing.T) {
	var buf bytes.Buffer
	listGates(&buf)
	out := buf.String()
	if !strings.Contains(out, "description") {
		t.Errorf("-list-gates output missing the description column:\n%s", out)
	}
	for _, name := range gate.Names() {
		g, _ := gate.Lookup(name)
		if !strings.Contains(out, g.Describe()) {
			t.Errorf("-list-gates output missing description of %s:\n%s", name, out)
		}
	}
	// Sorted order: each name appears after the previous one.
	prev := -1
	for _, name := range gate.Names() {
		idx := strings.Index(out, "\n  "+name)
		if idx < 0 || idx < prev {
			t.Errorf("-list-gates output not in sorted order:\n%s", out)
		}
		prev = idx
	}
}
