package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/la"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/session"
	"hybriddelay/internal/waveform"
)

// benchParams returns the calibrated testbench parameters; -fast uses a
// coarser integrator step.
func benchParams(opt options) nor.Params {
	p := nor.DefaultParams()
	if opt.fast {
		p.MaxStep = 8e-12
	}
	return p
}

// goldenBench builds the calibrated golden-reference NOR bench.
func goldenBench(opt options) (*nor.Bench, error) {
	return nor.New(benchParams(opt))
}

// deltaGrid returns the MIS sweep grid in seconds.
func deltaGrid(opt options, limPs, stepPs float64) []float64 {
	if opt.fast {
		stepPs *= 3
	}
	var out []float64
	for d := -limPs; d <= limPs+1e-9; d += stepPs {
		out = append(out, waveform.Ps(d))
	}
	return out
}

func toPsSlice(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = waveform.ToPs(x)
	}
	return out
}

// measuredTarget measures the golden characteristic delays.
func measuredTarget(b *nor.Bench) (hybrid.Characteristic, error) {
	return eval.MeasureCharacteristic(b)
}

// runFig2Wave prints the analog waveforms of Fig. 2a (falling output,
// Delta = 10 ps) and Fig. 2c (rising output, Delta = 40 ps).
func runFig2Wave(opt options) error {
	b, err := goldenBench(opt)
	if err != nil {
		return err
	}
	fall, err := b.FallingWaveforms(10e-12)
	if err != nil {
		return err
	}
	rise, err := b.RisingWaveforms(40e-12, 0)
	if err != nil {
		return err
	}
	render := func(title string, r *nor.Result) {
		n := 160
		t0, t1 := r.O.Start(), r.O.End()
		xs := make([]float64, n+1)
		mk := func(w *waveform.Waveform) []float64 {
			ys := make([]float64, n+1)
			for i := 0; i <= n; i++ {
				tm := t0 + (t1-t0)*float64(i)/float64(n)
				xs[i] = waveform.ToPs(tm)
				ys[i] = w.At(tm)
			}
			return ys
		}
		ss := []series{
			{name: "VA", marker: 'a', xs: xs, ys: mk(r.A)},
			{name: "VB", marker: 'b', xs: xs, ys: mk(r.B)},
			{name: "VO", marker: 'O', xs: xs, ys: mk(r.O)},
			{name: "VN", marker: 'n', xs: xs, ys: mk(r.N)},
		}
		if opt.csv {
			fmt.Printf("# %s\n%s", title, csvOut("t_ps", ss))
		} else {
			fmt.Print(asciiPlot(title, "time [ps]", "voltage [V]", 100, 20, ss))
		}
	}
	render("Fig. 2a — falling output transition (Delta = 10 ps)", fall)
	render("Fig. 2c — rising output transition (Delta = 40 ps)", rise)
	return nil
}

// runFig2Fall prints the golden falling MIS sweep (Fig. 2b).
func runFig2Fall(opt options) error {
	b, err := goldenBench(opt)
	if err != nil {
		return err
	}
	deltas := deltaGrid(opt, 60, 5)
	pts, err := b.FallingSweep(deltas)
	if err != nil {
		return err
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = waveform.ToPs(p.Delta)
		ys[i] = waveform.ToPs(p.Delay)
	}
	s := []series{{name: "delta_fall_S", marker: '*', xs: xs, ys: ys}}
	if opt.csv {
		fmt.Print(csvOut("delta_ps", s))
	} else {
		fmt.Print(asciiPlot("Fig. 2b — golden falling MIS delay", "Delta [ps]", "delay [ps]", 90, 18, s))
		min, tail := ys[0], ys[0]
		for _, y := range ys {
			if y < min {
				min = y
			}
		}
		fmt.Printf("speed-up at Delta=0: %.1f%% (paper: ~-28%%)\n", 100*(findAt(xs, ys, 0)-tail)/tail)
		_ = min
	}
	return nil
}

func findAt(xs, ys []float64, x float64) float64 {
	best, bv := 0, 1e300
	for i := range xs {
		d := xs[i] - x
		if d < 0 {
			d = -d
		}
		if d < bv {
			bv, best = d, i
		}
	}
	return ys[best]
}

// runFig2Rise prints the golden rising MIS sweep (Fig. 2d).
func runFig2Rise(opt options) error {
	b, err := goldenBench(opt)
	if err != nil {
		return err
	}
	deltas := deltaGrid(opt, 60, 5)
	pts, err := b.RisingSweep(deltas, 0)
	if err != nil {
		return err
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = waveform.ToPs(p.Delta)
		ys[i] = waveform.ToPs(p.Delay)
	}
	s := []series{{name: "delta_rise_S", marker: '*', xs: xs, ys: ys}}
	if opt.csv {
		fmt.Print(csvOut("delta_ps", s))
	} else {
		fmt.Print(asciiPlot("Fig. 2d — golden rising MIS delay", "Delta [ps]", "delay [ps]", 90, 18, s))
	}
	return nil
}

// runFig4 prints the hybrid mode trajectories from the paper's initial
// values (Fig. 4), using the Table I parameters.
func runFig4(opt options) error {
	p := hybrid.TableI()
	vdd := p.Supply.VDD
	cases := []struct {
		name string
		mode hybrid.Mode
		v0   la.Vec2
	}{
		{"(0,0)", hybrid.Mode00, la.Vec2{X: 0, Y: 0}},
		{"(0,1)", hybrid.Mode01, la.Vec2{X: vdd, Y: vdd}},
		{"(1,0)", hybrid.Mode10, la.Vec2{X: vdd, Y: vdd}},
		{"(1,1)", hybrid.Mode11, la.Vec2{X: vdd / 2, Y: vdd}},
	}
	var ss []series
	markers := []byte{'0', '1', '2', '3'}
	for i, c := range cases {
		tr, err := p.NewTrajectory(c.v0, []hybrid.Phase{{Start: 0, Mode: c.mode}})
		if err != nil {
			return err
		}
		times, vn, vo := tr.Sample(0, 150e-12, 150)
		ss = append(ss,
			series{name: "VO" + c.name, marker: markers[i], xs: toPsSlice(times), ys: vo},
			series{name: "VN" + c.name, marker: '.', xs: toPsSlice(times), ys: vn},
		)
	}
	if opt.csv {
		fmt.Print(csvOut("t_ps", ss))
	} else {
		fmt.Print(asciiPlot("Fig. 4 — temporal evolution of all mode systems (Table I)",
			"time [ps]", "voltage [V]", 100, 22, ss))
	}
	return nil
}

// runTable1 measures the golden characteristic delays and fits the
// hybrid model, printing the Table I analogue.
func runTable1(opt options) error {
	b, err := goldenBench(opt)
	if err != nil {
		return err
	}
	start := time.Now()
	target, err := measuredTarget(b)
	if err != nil {
		return err
	}
	p, rep, err := hybrid.FitCharacteristic(target, b.P.Supply, nil)
	if err != nil {
		return err
	}
	fmt.Printf("golden characteristic delays [ps]:\n")
	fmt.Printf("  fall(-inf)=%.2f fall(0)=%.2f fall(+inf)=%.2f\n",
		waveform.ToPs(target.FallMinusInf), waveform.ToPs(target.FallZero), waveform.ToPs(target.FallPlusInf))
	fmt.Printf("  rise(-inf)=%.2f rise(0)=%.2f rise(+inf)=%.2f\n",
		waveform.ToPs(target.RiseMinusInf), waveform.ToPs(target.RiseZero), waveform.ToPs(target.RisePlusInf))
	fmt.Printf("\nTable I (this testbench):\n")
	fmt.Printf("  Parameter  Value\n")
	fmt.Printf("  R1         %10.3f kΩ\n", p.R1/1e3)
	fmt.Printf("  R2         %10.3f kΩ\n", p.R2/1e3)
	fmt.Printf("  R3         %10.3f kΩ\n", p.R3/1e3)
	fmt.Printf("  R4         %10.3f kΩ\n", p.R4/1e3)
	fmt.Printf("  CN         %10.3f aF\n", p.CN/1e-18)
	fmt.Printf("  CO         %10.3f aF\n", p.CO/1e-18)
	fmt.Printf("  δmin       %10.3f ps (auto; paper: 18 ps for its ratio)\n", waveform.ToPs(rep.DMin))
	fmt.Printf("\nachieved [ps]: fall %.2f/%.2f/%.2f rise %.2f/%.2f/%.2f (cost %.3g, %d evals, %.1fs)\n",
		waveform.ToPs(rep.Achieved.FallMinusInf), waveform.ToPs(rep.Achieved.FallZero), waveform.ToPs(rep.Achieved.FallPlusInf),
		waveform.ToPs(rep.Achieved.RiseMinusInf), waveform.ToPs(rep.Achieved.RiseZero), waveform.ToPs(rep.Achieved.RisePlusInf),
		rep.Cost, rep.Evals, time.Since(start).Seconds())
	fmt.Printf("\npaper Table I reference: %s\n", hybrid.TableI())
	return nil
}

// runFig5 compares the fitted hybrid model's falling MIS delays against
// the golden sweep (Fig. 5).
func runFig5(opt options) error {
	b, err := goldenBench(opt)
	if err != nil {
		return err
	}
	target, err := measuredTarget(b)
	if err != nil {
		return err
	}
	p, _, err := hybrid.FitCharacteristic(target, b.P.Supply, nil)
	if err != nil {
		return err
	}
	deltas := deltaGrid(opt, 60, 5)
	goldenPts, err := b.FallingSweep(deltas)
	if err != nil {
		return err
	}
	modelPts, err := p.FallingSweep(deltas)
	if err != nil {
		return err
	}
	xs := toPsSlice(deltas)
	gold := make([]float64, len(goldenPts))
	model := make([]float64, len(modelPts))
	for i := range goldenPts {
		gold[i] = waveform.ToPs(goldenPts[i].Delay)
		model[i] = waveform.ToPs(modelPts[i].Delay)
	}
	ss := []series{
		{name: "delta_fall_S (golden)", marker: '*', xs: xs, ys: gold},
		{name: "delta_fall_M (hybrid)", marker: 'o', xs: xs, ys: model},
	}
	if opt.csv {
		fmt.Print(csvOut("delta_ps", ss))
	} else {
		fmt.Print(asciiPlot("Fig. 5 — falling MIS delays: hybrid model vs golden",
			"Delta [ps]", "delay [ps]", 90, 18, ss))
	}
	return nil
}

// runFig6 prints the hybrid rising delays for the three V_N initial
// values against the golden sweep (Fig. 6).
func runFig6(opt options) error {
	b, err := goldenBench(opt)
	if err != nil {
		return err
	}
	target, err := measuredTarget(b)
	if err != nil {
		return err
	}
	p, _, err := hybrid.FitCharacteristic(target, b.P.Supply, nil)
	if err != nil {
		return err
	}
	deltas := deltaGrid(opt, 90, 7.5)
	goldenPts, err := b.RisingSweep(deltas, 0)
	if err != nil {
		return err
	}
	xs := toPsSlice(deltas)
	gold := make([]float64, len(goldenPts))
	for i := range goldenPts {
		gold[i] = waveform.ToPs(goldenPts[i].Delay)
	}
	ss := []series{{name: "delta_rise_S (golden)", marker: '*', xs: xs, ys: gold}}
	for _, vn := range []hybrid.VNInitial{hybrid.VNGround, hybrid.VNHalf, hybrid.VNSupply} {
		pts, err := p.RisingSweep(deltas, vn)
		if err != nil {
			return err
		}
		ys := make([]float64, len(pts))
		for i := range pts {
			ys[i] = waveform.ToPs(pts[i].Delay)
		}
		marker := byte('g')
		switch vn {
		case hybrid.VNHalf:
			marker = 'h'
		case hybrid.VNSupply:
			marker = 'v'
		}
		ss = append(ss, series{name: "HM VN=" + vn.String(), marker: marker, xs: xs, ys: ys})
	}
	if opt.csv {
		fmt.Print(csvOut("delta_ps", ss))
	} else {
		fmt.Print(asciiPlot("Fig. 6 — rising MIS delays: hybrid model (3 V_N values) vs golden",
			"Delta [ps]", "delay [ps]", 90, 18, ss))
		fmt.Println("note: the model is flat for Delta <= 0 at VN=GND — the deficiency §IV reports.")
	}
	return nil
}

// runFig7 runs the deviation-area accuracy comparison (Fig. 7) for the
// selected -gate through one Session per invocation: the engine
// prepares (and memoizes) the operating point and fans the units
// across its worker pool.
func runFig7(opt options) error {
	g, err := opt.gateSpec()
	if err != nil {
		return err
	}
	solver, err := opt.solverMode()
	if err != nil {
		return err
	}
	p := benchParams(opt)
	p.Solver = solver
	seeds, err := opt.seedList()
	if err != nil {
		return err
	}
	configs := gen.PaperConfigs()
	for i := range configs {
		configs[i].Inputs = g.Arity()
		if opt.trans > 0 {
			configs[i].Transitions = opt.trans
		} else if opt.fast {
			configs[i].Transitions /= 4
		}
	}
	out := opt.w()
	workers := opt.parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if units := len(configs) * len(seeds); workers > units {
		workers = units // the engine never spawns more workers than units
	}
	st, finishStore, err := openStore(opt.store, os.Stderr)
	if err != nil {
		return err
	}
	defer finishStore()
	job := session.GateJob{
		Gate: g.Name(), Params: &p,
		Configs: configs, Seeds: seeds,
		ExpDMin: 20e-12,
		// No golden cache: every (config, seed) unit in a single fig7
		// run is unique, so memoization could never hit within one CLI
		// invocation — it would only hold every trace in memory. With a
		// -store directory the cache stays on as the read-through front
		// of the persistent tier, so repeat runs warm-start from disk.
		NoCache: opt.store == "",
	}
	if !opt.csv {
		// Progress goes to stderr so redirected stdout stays clean.
		job.Progress = func(p session.Progress) {
			fmt.Fprintf(os.Stderr, "\r%-20s seed %-6d %d/%d units", p.Config.Name(), p.Seed, p.Completed, p.Total)
		}
	}
	start := time.Now()
	sopt := session.Options{Workers: workers}
	if st != nil {
		sopt.Store = st
	}
	s := session.New(sopt)
	jres, err := s.Evaluate(context.Background(), job)
	if !opt.csv {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	reportSolver(os.Stderr, jres.Stats.Solver)
	results := jres.Gate
	if g.Name() != gate.Default().Name() {
		// The default gate keeps the historical output byte-for-byte; other
		// gates announce themselves. In CSV mode the banner goes to stderr
		// like the progress lines, so redirected stdout stays pure CSV.
		w := out
		if opt.csv {
			w = os.Stderr
		}
		fmt.Fprintf(w, "gate: %s (%d inputs), hybrid fit: %s\n", g.Name(), g.Arity(), jres.Models.HM)
	}
	groups := []string{}
	vals := map[string][]float64{}
	for _, name := range eval.ModelNames {
		vals[name] = nil
	}
	for _, res := range results {
		groups = append(groups, res.Config.Name())
		for _, name := range eval.ModelNames {
			vals[name] = append(vals[name], res.Normalized[name])
		}
		if !opt.csv {
			fmt.Fprintf(out, "%-20s golden events: %d\n", res.Config.Name(), res.GoldenEv)
		}
	}
	if !opt.csv {
		fmt.Fprintf(out, "%d units on %d workers in %.1fs\n", len(configs)*len(seeds), workers, time.Since(start).Seconds())
	}
	if opt.csv {
		fmt.Fprint(out, "config")
		for _, n := range eval.ModelNames {
			fmt.Fprintf(out, ",%s", n)
		}
		fmt.Fprintln(out)
		for gi, g := range groups {
			fmt.Fprintf(out, "%q", g)
			for _, n := range eval.ModelNames {
				fmt.Fprintf(out, ",%g", vals[n][gi])
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, barChart("Fig. 7 — normalized deviation area (lower is better, inertial = 1)",
		groups, eval.ModelNames, vals, 40))
	return nil
}

// runFig8 compares the hybrid model's falling delays with and without
// the pure delay against the golden sweep (Fig. 8).
func runFig8(opt options) error {
	b, err := goldenBench(opt)
	if err != nil {
		return err
	}
	target, err := measuredTarget(b)
	if err != nil {
		return err
	}
	withD, _, err := hybrid.FitCharacteristic(target, b.P.Supply, nil)
	if err != nil {
		return err
	}
	tailW := []float64{3, 1, 3, 3, 1, 3}
	without, _, err := hybrid.FitCharacteristic(target, b.P.Supply, &hybrid.FitOptions{DMin: 0, Weights: tailW})
	if err != nil {
		return err
	}
	deltas := deltaGrid(opt, 60, 5)
	goldenPts, err := b.FallingSweep(deltas)
	if err != nil {
		return err
	}
	a, err := withD.FallingSweep(deltas)
	if err != nil {
		return err
	}
	c, err := without.FallingSweep(deltas)
	if err != nil {
		return err
	}
	xs := toPsSlice(deltas)
	mk := func(pts []hybrid.SweepPoint) []float64 {
		out := make([]float64, len(pts))
		for i := range pts {
			out[i] = waveform.ToPs(pts[i].Delay)
		}
		return out
	}
	gold := make([]float64, len(goldenPts))
	for i := range goldenPts {
		gold[i] = waveform.ToPs(goldenPts[i].Delay)
	}
	ss := []series{
		{name: "golden", marker: '*', xs: xs, ys: gold},
		{name: "HM with δmin", marker: 'o', xs: xs, ys: mk(a)},
		{name: "HM without δmin", marker: 'x', xs: xs, ys: mk(c)},
	}
	if opt.csv {
		fmt.Print(csvOut("delta_ps", ss))
	} else {
		fmt.Print(asciiPlot("Fig. 8 — falling delays: pure delay ablation",
			"Delta [ps]", "delay [ps]", 90, 18, ss))
	}
	return nil
}

// runCharlie compares the closed-form characteristic Charlie delay
// formulas (8)-(12) against the exact trajectory solver.
func runCharlie(opt options) error {
	p := hybrid.TableI()
	exact, err := p.Characteristic()
	if err != nil {
		return err
	}
	formula, err := p.CharlieCharacteristic()
	if err != nil {
		return err
	}
	names := []string{"fall(-inf)", "fall(0)", "fall(+inf)", "rise(-inf)", "rise(0)", "rise(+inf)"}
	eqs := []string{"eq (9) exact", "eq (8) exact", "eq (10)", "eq (12)", "eq (11)", "eq (11)"}
	e := exact.AsSlice()
	f := formula.AsSlice()
	fmt.Println("Table I parameters — closed forms vs exact crossing solver [ps]:")
	fmt.Printf("  %-11s %-13s %10s %10s %12s\n", "delay", "formula", "closed", "exact", "error [fs]")
	for i := range names {
		fmt.Printf("  %-11s %-13s %10.3f %10.3f %12.2f\n",
			names[i], eqs[i], waveform.ToPs(f[i]), waveform.ToPs(e[i]), (f[i]-e[i])/1e-15)
	}
	lit, err := p.CharlieFallPlusInfAtW(hybrid.PaperW10)
	if err == nil {
		fmt.Printf("\nliteral eq (10) at the printed w = 100 ps: %.2f ps (exact %.2f ps)\n",
			waveform.ToPs(lit), waveform.ToPs(e[2]))
		fmt.Println("  -> the printed expansion point predates the Table I time constants;")
		fmt.Println("     this repo uses the slow-mode estimate as the expansion point (see DESIGN.md).")
	}
	return nil
}
