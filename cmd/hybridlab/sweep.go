package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hybriddelay/internal/gen"
	"hybriddelay/internal/session"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/sweep"
	"hybriddelay/internal/waveform"
)

// sweepOptions carries the `hybridlab sweep` flags.
type sweepOptions struct {
	gates    string
	vdd      string
	load     string
	modes    string
	mu       string
	sigma    string
	trans    int
	reps     int
	seed     int64
	seeds    string
	grid     string
	out      string
	csv      bool
	fast     bool
	parallel int
	store    string
	solver   string

	stdout io.Writer // overridable for tests; nil = os.Stdout
	stderr io.Writer // overridable for tests; nil = os.Stderr
}

// runSweepCmd is the `hybridlab sweep` entry point: it parses the axis
// flags (or a -grid JSON file), runs the sweep engine with progress on
// stderr, and writes the report (JSON by default, CSV with -csv) to
// -out or stdout.
func runSweepCmd(args []string) error {
	var o sweepOptions
	fs := newSubFlags("sweep")
	fs.StringVar(&o.gates, "gates", "nor2", "comma-separated registered gates (see -list-gates)")
	fs.StringVar(&o.vdd, "vdd", "1", "comma-separated supply-voltage scale factors")
	fs.StringVar(&o.load, "load", "1", "comma-separated output-load scale factors")
	fs.StringVar(&o.modes, "modes", "local,global", "comma-separated stimulus modes (local, global)")
	fs.StringVar(&o.mu, "mu", "200", "comma-separated mean transition gaps [ps], paired with -sigma")
	fs.StringVar(&o.sigma, "sigma", "100", "comma-separated gap standard deviations [ps] (length 1 broadcasts)")
	fs.IntVar(&o.trans, "trans", 100, "transitions per run")
	fs.IntVar(&o.reps, "reps", 3, "repetitions (seeds) per scenario")
	fs.Int64Var(&o.seed, "seed", 1, "base RNG seed")
	fs.StringVar(&o.seeds, "seeds", "", "explicit comma-separated seed list (overrides -reps/-seed)")
	fs.StringVar(&o.grid, "grid", "", "JSON grid-spec file (overrides every axis flag)")
	fs.StringVar(&o.out, "out", "", "report output path (default stdout)")
	fs.BoolVar(&o.csv, "csv", false, "emit the report as CSV instead of JSON")
	fs.BoolVar(&o.fast, "fast", false, "coarser integrator step for quick exploration")
	fs.IntVar(&o.parallel, "parallel", runtime.GOMAXPROCS(0), "evaluation workers (1 = serial)")
	fs.StringVar(&o.store, "store", "", "persistent golden-store directory (created if missing; warm-starts repeat runs)")
	solverFlagVar(fs, &o.solver)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return o.run()
}

func (o sweepOptions) run() error {
	stdout, stderr := subIO(o.stdout, o.stderr)
	spec, err := o.spec()
	if err != nil {
		return err
	}
	solver, err := spice.ParseSolverMode(o.solver)
	if err != nil {
		return err
	}
	if solver != spice.DenseExact {
		// The flag overrides the spec's solver strategy (grid files keep
		// everything else); the key change makes the whole grid miss the
		// dense cache tier, as it must.
		p := benchParams(options{fast: o.fast})
		if spec.Bench != nil {
			p = *spec.Bench
		}
		p.Solver = solver
		spec.Bench = &p
	}
	// Expansion is a microsecond cross product; running it once up
	// front surfaces spec errors (and the grid size) before any analog
	// work starts. The sweep job re-expands internally.
	scenarios, err := sweep.Expand(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "sweep: %d scenarios, %d seeds each, %d workers\n",
		len(scenarios), len(spec.SeedList()), o.parallel)

	st, finishStore, err := openStore(o.store, stderr)
	if err != nil {
		return err
	}
	defer finishStore()
	start := time.Now()
	sopt := session.Options{Workers: o.parallel}
	if st != nil {
		sopt.Store = st
	}
	s := session.New(sopt)
	res, err := s.Evaluate(context.Background(), session.SweepJob{
		Spec:     spec,
		Progress: sessionProgress(stderr, "evaluating units"),
	})
	if err != nil {
		return err
	}
	rep := res.Sweep
	fmt.Fprintf(stderr, "sweep: %d units in %.1fs (cache: %d hits / %d misses / %d entries; operating points: %d fitted / %d reused)\n",
		rep.TotalUnits, time.Since(start).Seconds(),
		rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Entries,
		res.Stats.Params.Misses, res.Stats.Params.Hits)
	reportSolver(stderr, res.Stats.Solver)

	w, closeReport, err := openReport(o.out, stdout)
	if err != nil {
		return err
	}
	if o.csv {
		err = rep.WriteCSV(w)
	} else {
		err = rep.WriteJSON(w)
	}
	if cerr := closeReport(); err == nil {
		err = cerr
	}
	return err
}

// spec assembles the sweep.Spec from the -grid file or the axis flags.
func (o sweepOptions) spec() (sweep.Spec, error) {
	var spec sweep.Spec
	if o.grid != "" {
		f, err := os.Open(o.grid)
		if err != nil {
			return sweep.Spec{}, err
		}
		defer f.Close()
		if spec, err = sweep.ParseSpec(f); err != nil {
			return sweep.Spec{}, err
		}
	} else {
		gates := splitList(o.gates)
		if len(gates) == 0 {
			return sweep.Spec{}, fmt.Errorf("sweep: -gates is empty")
		}
		vdds, err := parseFloats(o.vdd, "-vdd")
		if err != nil {
			return sweep.Spec{}, err
		}
		loads, err := parseFloats(o.load, "-load")
		if err != nil {
			return sweep.Spec{}, err
		}
		mus, err := parseFloats(o.mu, "-mu")
		if err != nil {
			return sweep.Spec{}, err
		}
		sigmas, err := parseFloats(o.sigma, "-sigma")
		if err != nil {
			return sweep.Spec{}, err
		}
		if len(sigmas) == 1 && len(mus) > 1 {
			for len(sigmas) < len(mus) {
				sigmas = append(sigmas, sigmas[0])
			}
		}
		if len(sigmas) != len(mus) {
			return sweep.Spec{}, fmt.Errorf("sweep: -mu has %d entries but -sigma has %d (they pair up)", len(mus), len(sigmas))
		}
		var stimuli []sweep.Stimulus
		for _, modeName := range splitList(o.modes) {
			mode, err := gen.ParseMode(modeName)
			if err != nil {
				return sweep.Spec{}, err
			}
			for i := range mus {
				stimuli = append(stimuli, sweep.Stimulus{
					Mode:        mode,
					Mu:          waveform.Ps(mus[i]),
					Sigma:       waveform.Ps(sigmas[i]),
					Transitions: o.trans,
				})
			}
		}
		spec = sweep.Spec{Gates: gates, VDDScale: vdds, LoadScale: loads, Stimuli: stimuli}
	}
	// Seed flags apply only to flag-built specs: a grid file owns its
	// seed configuration (explicit seeds, or seed_count/base_seed,
	// which Spec.SeedList resolves).
	if o.grid == "" {
		seeds, err := (options{seeds: o.seeds, reps: o.reps, seed: o.seed}).seedList()
		if err != nil {
			return sweep.Spec{}, err
		}
		spec.Seeds = seeds
	}
	if spec.Bench == nil && o.fast {
		p := benchParams(options{fast: true})
		spec.Bench = &p
	}
	return spec, nil
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseFloats parses a comma-separated float list flag.
func parseFloats(s, flagName string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad %s entry %q: %w", flagName, f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: %s is empty", flagName)
	}
	return out, nil
}
