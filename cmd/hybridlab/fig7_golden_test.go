package main

// Golden-file regression tests for the fig7 text output of every
// registered gate: the exact bytes the CLI emits are pinned under
// testdata/, so a refactor of the pipeline (like PR 2's gate
// generalization) can prove bit-identical output mechanically instead
// of by hand. Regenerate with:
//
//	go test ./cmd/hybridlab -run TestFig7Golden -update

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"hybriddelay/internal/gate"
)

var updateGolden = flag.Bool("update", false, "regenerate golden files")

// timingLine matches the wall-time suffix of the units summary — the
// only non-deterministic bytes of a fig7 run.
var timingLine = regexp.MustCompile(`in \d+\.\d+s`)

// fig7GoldenOpts pins every knob that shapes the output: fixed seed,
// fixed transition count, serial worker pool.
func fig7GoldenOpts() options {
	return options{fast: true, reps: 1, trans: 24, seed: 1, parallel: 1}
}

// normalizeFig7 strips the wall-time measurement so the remaining
// bytes are a pure function of the pipeline.
func normalizeFig7(out []byte) []byte {
	return timingLine.ReplaceAll(out, []byte("in X.Xs"))
}

func TestFig7Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy pipeline in -short mode")
	}
	for _, name := range gate.Names() {
		t.Run(name, func(t *testing.T) {
			opt := fig7GoldenOpts()
			opt.gate = name
			var buf bytes.Buffer
			opt.out = &buf
			if err := runFig7(opt); err != nil {
				t.Fatal(err)
			}
			got := normalizeFig7(buf.Bytes())
			path := filepath.Join("testdata", fmt.Sprintf("fig7_%s.golden", name))
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("fig7 -gate %s output drifted from %s.\n--- got ---\n%s\n--- want ---\n%s",
					name, path, got, want)
			}
		})
	}
}

// TestFig7GoldenWorkerIndependence: the golden bytes do not depend on
// the worker count — the same property the eval runner guarantees for
// its merged areas, observed at the CLI output layer.
func TestFig7GoldenWorkerIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy pipeline in -short mode")
	}
	render := func(workers int) []byte {
		t.Helper()
		opt := fig7GoldenOpts()
		opt.parallel = workers
		var buf bytes.Buffer
		opt.out = &buf
		if err := runFig7(opt); err != nil {
			t.Fatal(err)
		}
		out := normalizeFig7(buf.Bytes())
		// The units line also names the worker count; mask it so only
		// result bytes are compared.
		return regexp.MustCompile(`on \d+ workers`).ReplaceAll(out, []byte("on N workers"))
	}
	if one, four := render(1), render(4); !bytes.Equal(one, four) {
		t.Errorf("fig7 output depends on the worker count:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s", one, four)
	}
}
