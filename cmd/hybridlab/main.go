// Command hybridlab regenerates every table and figure of the paper
// "A Simple Hybrid Model for Accurate Delay Modeling of a Multi-Input
// Gate" (DATE 2022) from this repository's implementation.
//
// Usage:
//
//	hybridlab <experiment> [flags]
//
// Experiments:
//
//	fig2-wave   analog NOR waveforms, falling & rising (Fig. 2a/2c)
//	fig2-fall   golden falling MIS sweep delta_fall(Delta) (Fig. 2b)
//	fig2-rise   golden rising MIS sweep delta_rise(Delta) (Fig. 2d)
//	fig4        hybrid mode trajectories (Fig. 4)
//	table1      parametrization of the hybrid model (Table I analogue)
//	fig5        hybrid vs golden falling MIS delays (Fig. 5)
//	fig6        hybrid rising MIS delays for three V_N values (Fig. 6)
//	fig7        deviation-area accuracy comparison (Fig. 7)
//	fig8        falling delays with and without the pure delay (Fig. 8)
//	charlie     closed-form Charlie formulas vs exact solver (§V)
//	all         every experiment at reduced size
//
// Beyond the experiments, `hybridlab sweep` and `hybridlab circuit`
// run one-shot jobs with their own flags, `hybridlab serve` runs the
// evaluation engine as a long-lived multi-tenant HTTP service, and
// `hybridlab loadgen` benchmarks such a service (BENCH_serve.json).
//
// Common flags (accepted after the experiment name):
//
//	-csv        emit CSV instead of aligned tables/plots
//	-fast       reduce sweep resolution and repetition counts
//	-reps N     repetitions for fig7 (default 5; paper uses 20)
//	-trans N    transitions per fig7 run (default from the paper configs)
//	-seed N     base RNG seed (default 1)
//	-seeds L    explicit comma-separated seed list (overrides -reps/-seed)
//	-parallel N evaluation workers for fig7 (default GOMAXPROCS; 1 = serial)
//	-gate G     registered gate for fig7 (default nor2; see -list-gates)
//	-solver M   linear-solver strategy for fig7: dense-exact (default,
//	            bit-identical reference) or sparse-fast (structurally
//	            sparse kernel, numerically equivalent, faster)
//
// `hybridlab -list-gates` prints the registered gate names.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/spice"
)

// options carries the common CLI flags.
type options struct {
	csv      bool
	fast     bool
	reps     int
	trans    int
	seed     int64
	seeds    string
	parallel int
	gate     string
	store    string // golden-store directory; "" = no persistence
	solver   string // linear-solver strategy for fig7 (dense-exact, sparse-fast)

	out io.Writer // experiment output; nil = os.Stdout (tests capture it)
}

// w returns the experiment's output writer.
func (o options) w() io.Writer {
	if o.out != nil {
		return o.out
	}
	return os.Stdout
}

// gateSpec resolves the -gate flag through the shared lookup helper;
// an unknown name errors with the registered names.
func (o options) gateSpec() (gate.Gate, error) {
	return findGate(o.gate)
}

// solverMode resolves the -solver flag against the spice registry.
func (o options) solverMode() (spice.SolverMode, error) {
	return spice.ParseSolverMode(o.solver)
}

// seedList resolves the evaluation seeds: an explicit -seeds list when
// given, otherwise -reps consecutive seeds starting at -seed (capped at
// two in -fast mode).
func (o options) seedList() ([]int64, error) {
	if o.seeds != "" {
		var out []int64
		for _, f := range strings.Split(o.seeds, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -seeds entry %q: %w", f, err)
			}
			out = append(out, s)
		}
		return out, nil
	}
	reps := o.reps
	if reps <= 0 {
		reps = 5
	}
	if o.fast && reps > 2 {
		reps = 2
	}
	out := make([]int64, reps)
	for i := range out {
		out[i] = o.seed + int64(i)
	}
	return out, nil
}

type experiment struct {
	name string
	desc string
	run  func(opt options) error
}

// subcommand is a hybridlab mode with its own flag set (unlike the
// experiments, which share the common flags). All subcommands run
// through subMain, so flag errors, unknown-name errors and exit codes
// are reported identically.
type subcommand struct {
	name string
	desc string
	run  func(args []string) error
}

func subcommands() []subcommand {
	return []subcommand{
		{"sweep", "scenario sweep over the gate registry (own flags; see below)", runSweepCmd},
		{"circuit", "circuit-level accuracy report for a multi-gate netlist (own flags)", runCircuitCmd},
		{"serve", "long-running HTTP job service around one shared session (own flags)", runServeCmd},
		{"loadgen", "drive concurrent mixed clients against a server; writes BENCH_serve.json", runLoadgenCmd},
	}
}

func experiments() []experiment {
	return []experiment{
		{"fig2-wave", "analog NOR waveforms (Fig. 2a/2c)", runFig2Wave},
		{"fig2-fall", "golden falling MIS sweep (Fig. 2b)", runFig2Fall},
		{"fig2-rise", "golden rising MIS sweep (Fig. 2d)", runFig2Rise},
		{"fig4", "hybrid mode trajectories (Fig. 4)", runFig4},
		{"table1", "hybrid model parametrization (Table I)", runTable1},
		{"fig5", "hybrid vs golden falling delays (Fig. 5)", runFig5},
		{"fig6", "hybrid rising delays, three V_N values (Fig. 6)", runFig6},
		{"fig7", "deviation-area accuracy comparison (Fig. 7)", runFig7},
		{"fig8", "falling delays with/without pure delay (Fig. 8)", runFig8},
		{"charlie", "Charlie formulas vs exact solver (§V)", runCharlie},
		{"nand", "NAND duality extension: model vs analog bench", runNAND},
		{"nor3", "3-input NOR extension: model vs analog bench", runNOR3},
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "-list-gates" || name == "--list-gates" || name == "list-gates" {
		listGates(os.Stdout)
		return
	}
	for _, sc := range subcommands() {
		if sc.name == name {
			subMain(sc.name, func() error { return sc.run(os.Args[2:]) })
			return
		}
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	var opt options
	var listGatesFlag bool
	fs.BoolVar(&opt.csv, "csv", false, "emit CSV")
	fs.BoolVar(&opt.fast, "fast", false, "reduced resolution")
	fs.IntVar(&opt.reps, "reps", 5, "fig7 repetitions")
	fs.IntVar(&opt.trans, "trans", 0, "fig7 transitions per run (0 = paper value)")
	fs.Int64Var(&opt.seed, "seed", 1, "base RNG seed")
	fs.StringVar(&opt.seeds, "seeds", "", "explicit comma-separated seed list (overrides -reps/-seed)")
	fs.IntVar(&opt.parallel, "parallel", runtime.GOMAXPROCS(0), "evaluation workers (1 = serial)")
	fs.StringVar(&opt.gate, "gate", gate.Default().Name(), "registered gate for fig7 (see -list-gates)")
	fs.StringVar(&opt.store, "store", "", "persistent golden-store directory for fig7 (created if missing; warm-starts repeat runs)")
	solverFlagVar(fs, &opt.solver)
	fs.BoolVar(&listGatesFlag, "list-gates", false, "list registered gates and exit")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if listGatesFlag {
		listGates(os.Stdout)
		return
	}
	if _, err := opt.gateSpec(); err != nil {
		fmt.Fprintf(os.Stderr, "hybridlab: %v\n", err)
		os.Exit(2)
	}

	if name == "all" {
		opt.fast = true
		for _, e := range experiments() {
			fmt.Printf("==== %s — %s ====\n", e.name, e.desc)
			subMain(e.name, func() error { return e.run(opt) })
			fmt.Println()
		}
		return
	}
	for _, e := range experiments() {
		if e.name == name {
			subMain(e.name, func() error { return e.run(opt) })
			return
		}
	}
	fmt.Fprintf(os.Stderr, "hybridlab: unknown experiment %q\n\n", name)
	usage()
	os.Exit(2)
}

// listGates prints the registered gates in sorted order with arity and
// description columns.
func listGates(w io.Writer) {
	fmt.Fprintln(w, "registered gates (select with -gate):")
	fmt.Fprintf(w, "  %-8s %-8s %s\n", "name", "inputs", "description")
	for _, name := range gate.Names() {
		g, _ := gate.Lookup(name)
		def := ""
		if name == gate.Default().Name() {
			def = " (default)"
		}
		fmt.Fprintf(w, "  %-8s %-8d %s%s\n", name, g.Arity(), g.Describe(), def)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hybridlab <experiment> [flags]")
	fmt.Fprintln(os.Stderr, "\nexperiments:")
	for _, e := range experiments() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(os.Stderr, "  all        run everything at reduced size")
	for _, sc := range subcommands() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", sc.name, sc.desc)
	}
	fmt.Fprintln(os.Stderr, "\nflags: -csv -fast -reps N -trans N -seed N -seeds L -parallel N -gate G -store DIR -solver M -list-gates")
	fmt.Fprintln(os.Stderr, "sweep flags: -gates L -vdd L -load L -modes L -mu L -sigma L -trans N")
	fmt.Fprintln(os.Stderr, "             -reps N -seed N -seeds L -grid FILE -out FILE -csv -fast -parallel N -store DIR -solver M")
	fmt.Fprintln(os.Stderr, "circuit flags: -name C | -netlist FILE, -mode M -mu P -sigma P -trans N")
	fmt.Fprintln(os.Stderr, "               -reps N -seed N -seeds L -out FILE -csv -fast -parallel N -store DIR -solver M")
	fmt.Fprintln(os.Stderr, "serve flags: -addr A -parallel N -fast -store DIR -solver M")
	fmt.Fprintln(os.Stderr, "             -per-client N -max-active N -backlog N -golden-budget N -param-limit N")
	fmt.Fprintln(os.Stderr, "loadgen flags: -url U -clients N -jobs N -out FILE -verify (plus the serve flags for the in-process server)")
}
