package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hybriddelay/internal/serve"
)

// TestRunServeCmdLifecycle boots the serve subcommand on an ephemeral
// port, runs a gate job through the HTTP surface, reads /metrics, then
// stops it through the graceful-drain path and checks the golden store
// was flushed on the way out.
func TestRunServeCmdLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	dir := t.TempDir()
	var stderr bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	o := serveOptions{
		addr: "127.0.0.1:0", parallel: 2, fast: true, store: dir,
		stderr: &stderr,
		ready:  func(url string) { ready <- url },
		stop:   stop,
	}
	done := make(chan error, 1)
	go func() { done <- o.run() }()
	var base string
	select {
	case base = <-ready:
	case err := <-done:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve never became ready")
	}

	spec := `{"kind":"gate","gate":"nor2","stimuli":[{"mode":"LOCAL","mu":2e-10,"sigma":1e-10,"transitions":2}],"seeds":[1]}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var ack struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("decode ack: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ack.ID == "" {
		t.Fatalf("submit: status %d, ack %+v", resp.StatusCode, ack)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := http.Get(base + "/v1/jobs/" + ack.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		var js struct {
			State serve.State `json:"state"`
			Error string      `json:"error"`
		}
		if err := json.NewDecoder(st.Body).Decode(&js); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		st.Body.Close()
		if js.State == serve.StateDone {
			break
		}
		if js.State == serve.StateFailed || js.State == serve.StateCancelled {
			t.Fatalf("job ended %s: %s", js.State, js.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", js.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var m serve.Metrics
	if err := json.NewDecoder(mr.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	mr.Body.Close()
	if m.Store == nil {
		t.Errorf("metrics omit the mounted store: %+v", m)
	}
	if m.Jobs[serve.StateDone] != 1 {
		t.Errorf("metrics job table: %+v", m.Jobs)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not drain")
	}
	for _, want := range []string{"serve: listening", "draining in-flight jobs", "serve: drained", "golden store"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("serve stderr missing %q:\n%s", want, stderr.String())
		}
	}
	// The drain flushed the write-behind store: the trace files are on
	// disk, not just queued.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Errorf("golden store dir empty after drain")
	}
}

// TestRunServeCmdBadSolver: flag validation fails before any listener
// is bound.
func TestRunServeCmdBadSolver(t *testing.T) {
	var stderr bytes.Buffer
	o := serveOptions{addr: "127.0.0.1:0", solver: "warp-drive", stderr: &stderr}
	if err := o.run(); err == nil || !strings.Contains(err.Error(), "unknown solver mode") {
		t.Errorf("bad -solver error = %v", err)
	}
}

// TestRunLoadgenCmdEndToEnd runs the loadgen against its own
// in-process server and checks the BENCH_serve.json report: every job
// done, and the server's results byte-identical to a one-shot
// reference session.
func TestRunLoadgenCmdEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stdout, stderr bytes.Buffer
	o := loadgenOptions{
		serveOptions: serveOptions{parallel: 4, fast: true, stdout: &stdout, stderr: &stderr},
		clients:      4, jobs: 1, out: out, verify: true,
	}
	if err := o.run(); err != nil {
		t.Fatalf("loadgen: %v\nstderr:\n%s", err, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep serve.LoadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, raw)
	}
	if rep.Jobs != 4 || rep.Failures != 0 {
		t.Errorf("report jobs: %+v", rep)
	}
	if !rep.Verified || !rep.ByteIdentical {
		t.Errorf("server results not verified byte-identical: %+v", rep)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms || rep.JobsPerSec <= 0 {
		t.Errorf("implausible latency stats: %+v", rep)
	}
	if !strings.Contains(stderr.String(), "loadgen:") {
		t.Errorf("loadgen stderr silent:\n%s", stderr.String())
	}
}
