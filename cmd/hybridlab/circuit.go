package main

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/session"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/waveform"
)

// circuitOptions carries the `hybridlab circuit` flags.
type circuitOptions struct {
	name        string
	netlistPath string
	mode        string
	mu          float64
	sigma       float64
	trans       int
	reps        int
	seed        int64
	seeds       string
	parallel    int
	fast        bool
	out         string
	csv         bool
	store       string
	solver      string

	stdout io.Writer // overridable for tests; nil = os.Stdout
	stderr io.Writer // overridable for tests; nil = os.Stderr
}

// runCircuitCmd is the `hybridlab circuit` entry point: it resolves the
// netlist (a shipped example by -name, or a JSON file via -netlist),
// measures every gate the circuit uses, runs the circuit-level accuracy
// pipeline with progress on stderr, and writes the per-net report to
// -out or stdout (aligned table by default, CSV with -csv).
func runCircuitCmd(args []string) error {
	var o circuitOptions
	fs := newSubFlags("circuit")
	fs.StringVar(&o.name, "name", "nor-invchain",
		fmt.Sprintf("shipped example circuit (%s)", strings.Join(netlist.BuiltinNames(), ", ")))
	fs.StringVar(&o.netlistPath, "netlist", "", "JSON netlist file (overrides -name)")
	fs.StringVar(&o.mode, "mode", "local", "stimulus mode (local, global)")
	fs.Float64Var(&o.mu, "mu", 200, "mean transition gap [ps]")
	fs.Float64Var(&o.sigma, "sigma", 100, "gap standard deviation [ps]")
	fs.IntVar(&o.trans, "trans", 60, "transitions per run")
	fs.IntVar(&o.reps, "reps", 3, "repetitions (seeds)")
	fs.Int64Var(&o.seed, "seed", 1, "base RNG seed")
	fs.StringVar(&o.seeds, "seeds", "", "explicit comma-separated seed list (overrides -reps/-seed)")
	fs.IntVar(&o.parallel, "parallel", runtime.GOMAXPROCS(0), "evaluation workers (1 = serial)")
	fs.BoolVar(&o.fast, "fast", false, "coarser integrator step for quick exploration")
	fs.StringVar(&o.out, "out", "", "report output path (default stdout)")
	fs.BoolVar(&o.csv, "csv", false, "emit the report as CSV instead of a table")
	fs.StringVar(&o.store, "store", "", "persistent golden-store directory (created if missing; warm-starts repeat runs)")
	solverFlagVar(fs, &o.solver)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return o.run()
}

func (o circuitOptions) run() error {
	stdout, stderr := subIO(o.stdout, o.stderr)
	nl, err := findNetlist(o.name, o.netlistPath)
	if err != nil {
		return err
	}
	mode, err := gen.ParseMode(o.mode)
	if err != nil {
		return err
	}
	seeds, err := (options{seeds: o.seeds, reps: o.reps, seed: o.seed, fast: o.fast}).seedList()
	if err != nil {
		return err
	}
	cfg := gen.Config{
		Mu:          waveform.Ps(o.mu),
		Sigma:       waveform.Ps(o.sigma),
		Mode:        mode,
		Inputs:      len(nl.Inputs),
		Transitions: o.trans,
		Start:       200 * waveform.Pico,
	}
	solver, err := spice.ParseSolverMode(o.solver)
	if err != nil {
		return err
	}
	p := benchParams(options{fast: o.fast})
	p.Solver = solver

	fmt.Fprintf(stderr, "circuit %s: %d instances, %d primary inputs, %d recorded nets\n",
		nl.Name, len(nl.Instances), len(nl.Inputs), len(nl.Recorded()))
	fmt.Fprintf(stderr, "measuring and parametrizing gates...\n")

	st, finishStore, err := openStore(o.store, stderr)
	if err != nil {
		return err
	}
	defer finishStore()
	start := time.Now()
	sopt := session.Options{Workers: o.parallel}
	if st != nil {
		sopt.Store = st
	}
	s := session.New(sopt)
	jres, err := s.Evaluate(context.Background(), session.CircuitJob{
		Netlist: nl, Params: &p, Config: cfg, Seeds: seeds,
		ExpDMin:  20 * waveform.Pico,
		Progress: sessionProgress(stderr, "evaluating seeds"),
	})
	if err != nil {
		return err
	}
	res := *jres.Circuit
	fmt.Fprintf(stderr, "circuit %s: %d seeds in %.1fs (cache: %d hits / %d misses / %d entries)\n",
		nl.Name, len(seeds), time.Since(start).Seconds(),
		jres.Stats.Golden.Hits, jres.Stats.Golden.Misses, jres.Stats.Golden.Entries)
	reportSolver(stderr, jres.Stats.Solver)

	w, closeReport, err := openReport(o.out, stdout)
	if err != nil {
		return err
	}
	if o.csv {
		err = writeCircuitCSV(w, res)
	} else {
		err = writeCircuitTable(w, nl, cfg, res)
	}
	if cerr := closeReport(); err == nil {
		err = cerr
	}
	return err
}

// fmtRatio renders a normalized deviation ratio ("-" when undefined).
func fmtRatio(v float64) string {
	if v != v { // NaN
		return "-"
	}
	return fmt.Sprintf("%.4f", v)
}

// errWriter accumulates the first write error so table emission can
// report failures (e.g. a full disk behind -out) instead of silently
// truncating.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err == nil {
		_, ew.err = fmt.Fprintf(ew.w, format, args...)
	}
}

// writeCircuitTable renders the per-net accuracy report as an aligned
// table, normalized per net against the inertial baseline (Fig. 7
// convention lifted to circuits).
func writeCircuitTable(w io.Writer, nl *netlist.Netlist, cfg gen.Config, res eval.CircuitResult) error {
	ew := &errWriter{w: w}
	ew.printf("circuit %s — %s, %d transitions, seeds %v\n",
		nl.Name, cfg.Name(), cfg.Transitions, res.Seeds)
	ew.printf("deviation area normalized to the per-net inertial baseline:\n\n")
	ew.printf("%-12s %10s", "net", "golden-ev")
	for _, model := range eval.ModelNames {
		ew.printf(" %12s", model)
	}
	ew.printf("\n")
	for _, net := range res.Nets {
		ew.printf("%-12s %10d", net, res.GoldenEv[net])
		for _, model := range eval.ModelNames {
			ew.printf(" %12s", fmtRatio(res.Normalized[net][model]))
		}
		ew.printf("\n")
	}
	total := 0
	for _, net := range res.Nets {
		total += res.GoldenEv[net]
	}
	ew.printf("%-12s %10d", "TOTAL", total)
	for _, model := range eval.ModelNames {
		ew.printf(" %12s", fmtRatio(res.TotalNormalized[model]))
	}
	ew.printf("\n")
	return ew.err
}

// writeCircuitCSV renders the per-net report as CSV (one row per net
// plus a TOTAL row; absolute areas in seconds, normalized ratios as
// NaN-safe columns).
func writeCircuitCSV(w io.Writer, res eval.CircuitResult) error {
	cols := []string{"net", "golden_events"}
	for _, model := range eval.ModelNames {
		cols = append(cols, "area_"+model, "norm_"+model)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	row := func(name string, ev int, area, norm map[string]float64) error {
		fields := []string{name, fmt.Sprintf("%d", ev)}
		for _, model := range eval.ModelNames {
			fields = append(fields,
				fmt.Sprintf("%g", area[model]),
				fmt.Sprintf("%g", norm[model]))
		}
		_, err := fmt.Fprintln(w, strings.Join(fields, ","))
		return err
	}
	for _, net := range res.Nets {
		if err := row(net, res.GoldenEv[net], res.Area[net], res.Normalized[net]); err != nil {
			return err
		}
	}
	total := 0
	for _, net := range res.Nets {
		total += res.GoldenEv[net]
	}
	return row("TOTAL", total, res.TotalArea, res.TotalNormalized)
}
