package main

import (
	"fmt"
	"math"
	"strings"
)

// series is one named curve for the ASCII plotter.
type series struct {
	name   string
	marker byte
	xs, ys []float64
}

// asciiPlot renders one or more series into a fixed-size character
// grid — enough to eyeball the MIS curves in a terminal; use -csv for
// machine-readable output.
func asciiPlot(title, xlabel, ylabel string, w, h int, ss []series) string {
	if w < 20 {
		w = 72
	}
	if h < 8 {
		h = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range ss {
		for i := range s.xs {
			minX = math.Min(minX, s.xs[i])
			maxX = math.Max(maxX, s.xs[i])
			minY = math.Min(minY, s.ys[i])
			maxY = math.Max(maxY, s.ys[i])
		}
	}
	if minX >= maxX {
		maxX = minX + 1
	}
	if minY >= maxY {
		maxY = minY + 1
	}
	// A little headroom.
	pad := 0.05 * (maxY - minY)
	minY -= pad
	maxY += pad

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range ss {
		for i := range s.xs {
			cx := int(math.Round((s.xs[i] - minX) / (maxX - minX) * float64(w-1)))
			cy := int(math.Round((s.ys[i] - minY) / (maxY - minY) * float64(h-1)))
			row := h - 1 - cy
			if row >= 0 && row < h && cx >= 0 && cx < w {
				grid[row][cx] = s.marker
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%10.4g ┤%s\n", maxY, string(grid[0]))
	for i := 1; i < h-1; i++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%10.4g ┤%s\n", minY, string(grid[h-1]))
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", w))
	fmt.Fprintf(&b, "%12s%-10.4g%*s%10.4g   (%s vs %s)\n", "", minX, w-20, "", maxX, ylabel, xlabel)
	legend := make([]string, 0, len(ss))
	for _, s := range ss {
		legend = append(legend, fmt.Sprintf("%c = %s", s.marker, s.name))
	}
	fmt.Fprintf(&b, "%12s%s\n", "", strings.Join(legend, "   "))
	return b.String()
}

// csvOut renders series as aligned CSV columns on a shared x column
// (the series must share identical x grids; plotters in this tool do).
func csvOut(xlabel string, ss []series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", xlabel)
	for _, s := range ss {
		fmt.Fprintf(&b, ",%s", s.name)
	}
	fmt.Fprintln(&b)
	if len(ss) == 0 {
		return b.String()
	}
	for i := range ss[0].xs {
		fmt.Fprintf(&b, "%g", ss[0].xs[i])
		for _, s := range ss {
			if i < len(s.ys) {
				fmt.Fprintf(&b, ",%g", s.ys[i])
			} else {
				fmt.Fprintf(&b, ",")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// barChart renders grouped horizontal bars (Fig. 7 style).
func barChart(title string, groups []string, names []string, values map[string][]float64, width int) string {
	if width <= 0 {
		width = 48
	}
	maxV := 0.0
	//hybrid:nondet-ok commutative max fold; the scale is independent of visit order
	for _, vs := range values {
		for _, v := range vs {
			maxV = math.Max(maxV, v)
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for gi, g := range groups {
		fmt.Fprintf(&b, "%s\n", g)
		for _, n := range names {
			v := values[n][gi]
			bar := int(math.Round(v / maxV * float64(width)))
			fmt.Fprintf(&b, "  %-12s %6.2f %s\n", n, v, strings.Repeat("█", bar))
		}
	}
	return b.String()
}
