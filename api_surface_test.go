package hybriddelay

// API-surface snapshot: the exported identifiers of the facade package
// are pinned in testdata/api_surface.golden, so any surface drift —
// an accidentally removed wrapper, a renamed type, a new entry point —
// shows up as an explicit golden-file diff in review instead of
// slipping through. Regenerate deliberately with
//
//	go test -run TestAPISurface -update .
//
// The listing is go doc-style: one line per exported const, var, func
// (with signature) and type declared at the package top level, sorted.

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateSurface = flag.Bool("update", false, "regenerate the API-surface golden file")

// apiSurface renders the exported top-level declarations of the
// package in this directory as a sorted, deterministic listing.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["hybriddelay"]
	if !ok {
		t.Fatalf("package hybriddelay not found (parsed: %v)", pkgs)
	}
	render := func(n ast.Node) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, n); err != nil {
			t.Fatal(err)
		}
		// Collapse multi-line renderings (struct literals, long
		// signatures) into single canonical lines.
		return strings.Join(strings.Fields(buf.String()), " ")
	}
	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue // methods live on the aliased internal types
				}
				lines = append(lines, fmt.Sprintf("func %s %s", d.Name.Name, render(d.Type)))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						eq := ""
						if sp.Assign != token.NoPos {
							eq = "= "
						}
						lines = append(lines, fmt.Sprintf("type %s %s%s", sp.Name.Name, eq, render(sp.Type)))
					case *ast.ValueSpec:
						kind := "const"
						if d.Tok == token.VAR {
							kind = "var"
						}
						for _, name := range sp.Names {
							if name.IsExported() {
								lines = append(lines, fmt.Sprintf("%s %s", kind, name.Name))
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func TestAPISurface(t *testing.T) {
	got := apiSurface(t)
	path := filepath.Join("testdata", "api_surface.golden")
	if *updateSurface {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d identifiers)", path, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestAPISurface -update .`): %v", err)
	}
	if got != string(want) {
		t.Errorf("exported API surface drifted from %s.\n"+
			"If the change is intentional, regenerate with `go test -run TestAPISurface -update .` and review the diff.\n"+
			"--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}
